// The 491-entry API feature vocabulary.
//
// The paper extracts 491 API-call features from sandbox log files
// (Table III shows an alphabetical excerpt: indices 475..484 are
// waitmessage..writeprofilestringa). The real vocabulary is proprietary;
// this one is a deterministic stand-in built from real Win32 API names and
// guaranteed to contain every API name the paper prints, including the two
// added by its Fig. 1 adversarial example ("destroyicon", "dllsload").
//
// Feature identity does not affect any algorithm — only the vector index
// mapping — so the substitution is behaviour-preserving (see DESIGN.md §2).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mev::data {

/// Number of API features, fixed by the paper.
inline constexpr std::size_t kNumApiFeatures = 491;

/// Immutable, alphabetically ordered API name -> feature index mapping.
class ApiVocab {
 public:
  /// The canonical 491-name vocabulary (singleton; thread-safe init).
  static const ApiVocab& instance();

  /// Builds a vocabulary from explicit names (must be unique, non-empty).
  /// Names are lower-cased and sorted. Primarily for tests.
  explicit ApiVocab(std::vector<std::string> names);

  std::size_t size() const noexcept { return names_.size(); }

  /// Feature index for an API name (case-insensitive); nullopt if unknown.
  std::optional<std::size_t> index_of(std::string_view api_name) const;

  /// Name at a feature index. Throws std::out_of_range.
  const std::string& name(std::size_t index) const;

  std::span<const std::string> names() const noexcept { return names_; }

  bool contains(std::string_view api_name) const {
    return index_of(api_name).has_value();
  }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::size_t> index_;
};

/// Lower-cases ASCII (API names are ASCII).
std::string to_lower_ascii(std::string_view s);

/// The API names the paper explicitly mentions; the canonical vocabulary is
/// guaranteed to contain all of them.
std::span<const std::string_view> paper_api_names();

}  // namespace mev::data
