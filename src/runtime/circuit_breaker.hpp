// Circuit breaker (closed / open / half-open) guarding the oracle.
//
//   closed    -- normal operation; `failure_threshold` consecutive
//                failures trip it open.
//   open      -- calls are refused (allow() == false) until
//                `open_cooldown_ms` of clock time has passed.
//   half-open -- after the cooldown one trial call is let through;
//                `half_open_successes` successes close the breaker, any
//                failure re-trips it.
//
// Single-threaded like the rest of the oracle stack (one breaker per
// oracle per thread); all timing goes through the injected Clock.
#pragma once

#include <cstddef>
#include <cstdint>

#include "runtime/clock.hpp"

namespace mev::runtime {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

inline const char* to_string(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

struct CircuitBreakerConfig {
  /// Consecutive failures (while closed) that trip the breaker.
  std::size_t failure_threshold = 5;
  /// How long the breaker stays open before admitting a trial call.
  std::uint64_t open_cooldown_ms = 1000;
  /// Successes required in half-open state to close again.
  std::size_t half_open_successes = 1;
};

class CircuitBreaker {
 public:
  CircuitBreaker(const CircuitBreakerConfig& config, Clock& clock);

  /// Whether a call may proceed now. Transitions open -> half-open once
  /// the cooldown has elapsed.
  bool allow();

  void record_success();
  void record_failure();

  BreakerState state() const noexcept { return state_; }
  /// Times the breaker has transitioned to open (including re-trips from
  /// half-open).
  std::size_t trips() const noexcept { return trips_; }
  /// Milliseconds until an open breaker admits a trial call (0 when not
  /// open or already due).
  std::uint64_t cooldown_remaining_ms();

 private:
  void trip();

  CircuitBreakerConfig config_;
  Clock* clock_;
  BreakerState state_ = BreakerState::kClosed;
  std::size_t consecutive_failures_ = 0;
  std::size_t half_open_successes_ = 0;
  std::size_t trips_ = 0;
  std::uint64_t opened_at_ms_ = 0;
};

}  // namespace mev::runtime
