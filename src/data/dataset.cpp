#include "data/dataset.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace mev::data {

void CountDataset::append(const CountDataset& other) {
  if (other.size() == 0) return;
  if (counts.rows() != 0 && counts.cols() != other.counts.cols())
    throw std::invalid_argument("CountDataset::append: feature dim mismatch");
  for (std::size_t r = 0; r < other.counts.rows(); ++r)
    counts.append_row(other.counts.row(r));
  labels.insert(labels.end(), other.labels.begin(), other.labels.end());
}

std::vector<std::size_t> CountDataset::indices_of(int label) const {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < labels.size(); ++i)
    if (labels[i] == label) idx.push_back(i);
  return idx;
}

CountDataset CountDataset::subset(const std::vector<std::size_t>& indices) const {
  CountDataset out;
  out.counts = counts.gather_rows(indices);
  out.labels.reserve(indices.size());
  for (std::size_t i : indices) out.labels.push_back(labels.at(i));
  return out;
}

DatasetSpec DatasetSpec::paper() {
  DatasetSpec s;
  s.train_clean = 28594;
  s.train_malware = 28576;
  s.val_clean = 280;
  s.val_malware = 298;
  s.test_clean = 16154;
  s.test_malware = 28874;
  return s;
}

DatasetSpec DatasetSpec::scaled(double factor, std::size_t min_per_class) {
  if (factor <= 0.0 || factor > 1.0)
    throw std::invalid_argument("DatasetSpec::scaled: factor out of (0,1]");
  const DatasetSpec full = paper();
  const auto scale = [&](std::size_t n) {
    return std::max(min_per_class,
                    static_cast<std::size_t>(static_cast<double>(n) * factor));
  };
  DatasetSpec s;
  s.train_clean = scale(full.train_clean);
  s.train_malware = scale(full.train_malware);
  s.val_clean = scale(full.val_clean);
  s.val_malware = scale(full.val_malware);
  s.test_clean = scale(full.test_clean);
  s.test_malware = scale(full.test_malware);
  return s;
}

std::string describe(const DatasetSpec& spec) {
  std::ostringstream os;
  os << "Training Set   " << spec.train_total() << " (" << spec.train_clean
     << " clean and " << spec.train_malware << " malware)\n"
     << "Validation Set " << spec.val_total() << " (" << spec.val_clean
     << " clean and " << spec.val_malware << " malware)\n"
     << "Test Set       " << spec.test_total() << " (" << spec.test_clean
     << " clean and " << spec.test_malware << " malware)";
  return os.str();
}

}  // namespace mev::data
