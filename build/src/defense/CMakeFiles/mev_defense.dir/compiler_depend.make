# Empty compiler generated dependencies file for mev_defense.
# This may be replaced when dependencies are built.
