file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/nn/test_activation.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_activation.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_layer.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_layer.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_loss.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_loss.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_network.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_network.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_optimizer.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_optimizer.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_trainer.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_trainer.cpp.o.d"
  "test_nn"
  "test_nn.pdb"
  "test_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
