#include "attack/fgsm.hpp"

#include <algorithm>
#include <stdexcept>

#include "math/linalg.hpp"
#include "nn/session.hpp"
#include "obs/obs.hpp"

namespace mev::attack {

FgsmAddOnly::FgsmAddOnly(FgsmConfig config) : config_(config) {
  if (config_.theta < 0.0f)
    throw std::invalid_argument("FgsmAddOnly: theta must be non-negative");
}

AttackResult FgsmAddOnly::craft(const nn::Network& model,
                                const math::Matrix& x) const {
  const std::size_t n = x.rows(), m = x.cols();
  AttackResult result;
  result.adversarial = x;
  result.evaded.assign(n, false);
  result.features_changed.assign(n, 0);
  result.l2_perturbation.assign(n, 0.0);
  if (n == 0) return result;

  obs::MetricsRegistry* registry = obs::current_registry();
  obs::Span craft_span =
      obs::span(obs::current_tracer(), "mev.attack.fgsm.craft");
  craft_span.arg("samples", static_cast<double>(n));

  nn::InferenceSession session(model, n);
  // input_gradient returns a reference into the session; copy before the
  // final predict reuses the buffers.
  const math::Matrix grad =
      session.input_gradient(x, config_.target_class);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t changed = 0;
    for (std::size_t j = 0; j < m; ++j) {
      if (grad(i, j) <= 0.0f) continue;  // add-only, toward target class
      float& value = result.adversarial(i, j);
      if (value >= 1.0f) continue;
      value = std::min(1.0f, value + config_.theta);
      ++changed;
    }
    result.features_changed[i] = changed;
    result.l2_perturbation[i] =
        math::l2_distance(x.row(i), result.adversarial.row(i));
  }

  const auto preds = session.predict(result.adversarial);
  for (std::size_t i = 0; i < n; ++i)
    result.evaded[i] = preds[i] == config_.target_class;

  obs::Counter samples_counter = registry->counter(
      "mev.attack.fgsm.samples", "samples submitted to FGSM crafting");
  obs::Counter evaded_counter = registry->counter(
      "mev.attack.fgsm.evaded", "samples misclassified after crafting");
  obs::Histogram flips_histogram = registry->histogram(
      "mev.attack.fgsm.features_changed", "features perturbed per sample");
  std::size_t evaded_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    evaded_total += result.evaded[i] ? 1 : 0;
    flips_histogram.record(result.features_changed[i]);
  }
  samples_counter.inc(n);
  evaded_counter.inc(evaded_total);
  craft_span.arg("evaded", static_cast<double>(evaded_total));
  return result;
}

}  // namespace mev::attack
