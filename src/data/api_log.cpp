#include "data/api_log.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

#include "data/api_vocab.hpp"

namespace mev::data {

std::string to_string(OsVariant os) {
  switch (os) {
    case OsVariant::kWin7: return "Win7";
    case OsVariant::kWinXp: return "WinXP";
    case OsVariant::kWin8: return "Win8";
    case OsVariant::kWin10: return "Win10";
  }
  return "Win7";
}

OsVariant os_variant_from_string(std::string_view s) {
  if (s == "Win7") return OsVariant::kWin7;
  if (s == "WinXP") return OsVariant::kWinXp;
  if (s == "Win8") return OsVariant::kWin8;
  if (s == "Win10") return OsVariant::kWin10;
  throw std::runtime_error("os_variant_from_string: unknown variant");
}

std::size_t ApiLog::count_api(std::string_view api_name) const {
  const std::string wanted = to_lower_ascii(api_name);
  std::size_t n = 0;
  for (const auto& call : calls)
    if (to_lower_ascii(call.api) == wanted) ++n;
  return n;
}

void ApiLog::append_calls(std::string_view api_name, std::size_t repeat,
                          std::uint32_t thread_id) {
  const std::uint32_t tid =
      thread_id != 0 ? thread_id
                     : (calls.empty() ? 1000u : calls.back().thread_id);
  const std::uint64_t base =
      calls.empty() ? 0x140000000ULL : calls.back().address + 0x40;
  for (std::size_t i = 0; i < repeat; ++i) {
    ApiCall call;
    call.api = std::string(api_name);
    call.address = base + 0x10 * i;
    call.thread_id = tid;
    calls.push_back(std::move(call));
  }
}

std::string format_api_call(const ApiCall& call) {
  std::ostringstream os;
  os << call.api << ':' << std::uppercase << std::hex << call.address
     << std::dec << " (" << call.args << ")\"" << call.thread_id << '"';
  return os.str();
}

ApiCall parse_api_call(std::string_view line) {
  ApiCall call;
  const std::size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0)
    throw std::runtime_error("parse_api_call: missing ':' in line");
  call.api = std::string(line.substr(0, colon));

  const std::size_t space = line.find(' ', colon + 1);
  if (space == std::string_view::npos)
    throw std::runtime_error("parse_api_call: missing address separator");
  const std::string_view addr = line.substr(colon + 1, space - colon - 1);
  {
    const auto [ptr, ec] = std::from_chars(
        addr.data(), addr.data() + addr.size(), call.address, 16);
    if (ec != std::errc{} || ptr != addr.data() + addr.size())
      throw std::runtime_error("parse_api_call: bad address");
  }

  // Trailing `"<tid>"`.
  const std::size_t last_quote = line.rfind('"');
  if (last_quote == std::string_view::npos || last_quote + 1 != line.size())
    throw std::runtime_error("parse_api_call: missing trailing quote");
  const std::size_t tid_quote = line.rfind('"', last_quote - 1);
  if (tid_quote == std::string_view::npos || tid_quote <= space)
    throw std::runtime_error("parse_api_call: missing thread id");
  const std::string_view tid =
      line.substr(tid_quote + 1, last_quote - tid_quote - 1);
  {
    const auto [ptr, ec] =
        std::from_chars(tid.data(), tid.data() + tid.size(), call.thread_id);
    if (ec != std::errc{} || ptr != tid.data() + tid.size())
      throw std::runtime_error("parse_api_call: bad thread id");
  }

  // Args: between '(' after the space and the ')' preceding the tid quote.
  if (space + 1 >= line.size() || line[space + 1] != '(')
    throw std::runtime_error("parse_api_call: missing '('");
  if (tid_quote == 0 || line[tid_quote - 1] != ')')
    throw std::runtime_error("parse_api_call: missing ')'");
  call.args = std::string(line.substr(space + 2, tid_quote - 1 - (space + 2)));
  return call;
}

void write_log(const ApiLog& log, std::ostream& os) {
  os << "# sample: " << log.sample_name << '\n';
  os << "# os: " << to_string(log.os) << '\n';
  for (const auto& call : log.calls) os << format_api_call(call) << '\n';
}

std::string log_to_string(const ApiLog& log) {
  std::ostringstream os;
  write_log(log, os);
  return os.str();
}

ApiLog read_log(std::istream& is) {
  ApiLog log;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      constexpr std::string_view kSample = "# sample: ";
      constexpr std::string_view kOs = "# os: ";
      if (line.starts_with(kSample))
        log.sample_name = line.substr(kSample.size());
      else if (line.starts_with(kOs))
        log.os = os_variant_from_string(
            std::string_view(line).substr(kOs.size()));
      continue;  // unknown headers are ignored
    }
    log.calls.push_back(parse_api_call(line));
  }
  return log;
}

ApiLog log_from_string(std::string_view text) {
  std::istringstream is{std::string(text)};
  return read_log(is);
}

}  // namespace mev::data
