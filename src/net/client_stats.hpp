// Per-client (API-key) query observability for the scoring frontend:
// windowed request/row/rejection rates plus a per-client score-drift PSI,
// keyed through net::ApiKeyLimiter's client identity (the label half of
// an ApiKey, never the secret). Served as JSON on the admin plane's
// /clientz and mirrored as mev.net.client_psi{client=...} gauges.
//
// Why per-client: the paper's black-box attacker is one caller among
// many. Aggregate drift (serve/drift.hpp on the whole service) says "the
// query mix moved"; the per-client PSI says *whose* — a probing client's
// confidence distribution shifts while benign clients' stay flat.
//
// Cardinality is bounded: at most `max_clients` tracked entries; callers
// beyond the cap collapse into one synthetic "(overflow)" entry so a
// key-churning attacker cannot balloon this table (the cap is logged via
// the overflow entry itself — its activity IS the signal). Entries are
// heap-held and never evicted, so a pointer handed to an in-flight
// request callback stays valid for the tracker's lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/window.hpp"
#include "serve/drift.hpp"

namespace mev::net {

struct ClientStatsConfig {
  /// Geometry of the rate windows (requests/rows/rejections). Default
  /// 12 x 5 s = 60 s.
  obs::WindowConfig window{5'000'000, 12};
  /// Per-client score drift: current-window geometry + the number of
  /// verdicts that freeze each client's reference.
  serve::DriftConfig drift;
  /// Tracked client labels before new ones collapse into "(overflow)".
  std::size_t max_clients = 64;
};

/// One tracked client. Recording methods are lock-free (window adds +
/// relaxed atomics); the tracker's mutex guards only entry creation.
struct ClientEntry {
  ClientEntry(std::string label, const ClientStatsConfig& config)
      : client(std::move(label)),
        requests(config.window),
        rows(config.window),
        rejected(config.window),
        drift(config.drift) {}

  /// One admitted-or-rate-limited request reaching the limiter.
  void record_request(std::uint64_t now_us, std::uint64_t row_count) noexcept {
    requests.add(now_us);
    rows.add(now_us, row_count);
    lifetime_requests.fetch_add(1, std::memory_order_relaxed);
    lifetime_rows.fetch_add(row_count, std::memory_order_relaxed);
  }
  /// One rejection charged to this client (429 at the limiter, or a
  /// service-side rejection at completion).
  void record_reject(std::uint64_t now_us) noexcept {
    rejected.add(now_us);
    lifetime_rejected.fetch_add(1, std::memory_order_relaxed);
  }
  /// One verdict confidence from a completed score request.
  void record_score(std::uint64_t now_us, double score) noexcept {
    drift.record(now_us, score);
  }
  /// Recomputes this client's PSI and pushes it into the gauge mirror.
  double refresh_psi(std::uint64_t now_us) noexcept {
    const double value = drift.psi(now_us);
    psi_gauge.set(value);
    return value;
  }

  const std::string client;
  obs::SlidingCounter requests;
  obs::SlidingCounter rows;
  obs::SlidingCounter rejected;
  serve::ScoreDrift drift;
  obs::Gauge psi_gauge;
  std::atomic<std::uint64_t> lifetime_requests{0};
  std::atomic<std::uint64_t> lifetime_rows{0};
  std::atomic<std::uint64_t> lifetime_rejected{0};
};

class ClientStatsTracker {
 public:
  /// `registry` backs the per-client PSI gauges (nullptr = ambient);
  /// both must outlive the tracker.
  explicit ClientStatsTracker(ClientStatsConfig config = {},
                              obs::MetricsRegistry* registry = nullptr);

  ClientStatsTracker(const ClientStatsTracker&) = delete;
  ClientStatsTracker& operator=(const ClientStatsTracker&) = delete;

  /// Finds or creates the entry for `client`. Beyond max_clients every
  /// new label maps to the shared "(overflow)" entry. Returned pointer
  /// stays valid for the tracker's lifetime.
  ClientEntry* entry(std::string_view client);

  /// Entries in creation order (for /clientz and tests).
  std::vector<const ClientEntry*> entries() const;
  std::size_t size() const;

  /// The /clientz body: {"clients":[{"client","window_s",
  /// "requests_per_s","rows_per_s","reject_rate","score_psi",
  /// "reference_frozen","lifetime_requests","lifetime_rows",
  /// "lifetime_rejected"},...]} — refreshes every PSI gauge as it goes.
  std::string to_json(std::uint64_t now_us);

  const ClientStatsConfig& config() const noexcept { return config_; }

 private:
  ClientStatsConfig config_;
  obs::MetricsRegistry* registry_;
  mutable std::mutex mutex_;  // guards the map + insertion order
  std::unordered_map<std::string, ClientEntry*> index_;
  std::vector<std::unique_ptr<ClientEntry>> entries_;
};

}  // namespace mev::net
