// Crash-safe file persistence: write-to-temp + atomic rename, plus a
// checksummed envelope so readers reject truncated, corrupted, or
// wrong-type files with a clear error instead of loading garbage.
//
// Envelope layout (host-endian PODs, matching the network serializer):
//   u32 magic | u32 version | u64 payload_size | u64 fnv1a64(payload) |
//   payload bytes
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mev::runtime {

/// FNV-1a 64-bit hash of a byte string.
std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Writes `contents` to `<path>.tmp` in the same directory, then renames
/// over `path` — readers see either the old file or the complete new one,
/// never a partial write. Throws std::runtime_error on I/O failure.
void write_file_atomic(const std::string& path, std::string_view contents);

/// Atomically writes `payload` wrapped in a checksummed envelope.
void write_envelope_atomic(const std::string& path, std::uint32_t magic,
                           std::uint32_t version, std::string_view payload);

/// Reads and verifies an envelope, returning the payload. `what` names the
/// file kind in error messages (e.g. "detector network"). Throws
/// std::runtime_error when the file is missing, truncated, has the wrong
/// magic or version, or fails its checksum.
std::string read_envelope(const std::string& path, std::uint32_t magic,
                          std::uint32_t expected_version,
                          const std::string& what);

/// Like read_envelope, but accepts any version in [min_version,
/// max_version] and reports which one the file carries — the hook for
/// format evolution (the black-box checkpoint reads v1 and v2 payloads).
std::string read_envelope_versioned(const std::string& path,
                                    std::uint32_t magic,
                                    std::uint32_t min_version,
                                    std::uint32_t max_version,
                                    std::uint32_t& version_out,
                                    const std::string& what);

}  // namespace mev::runtime
