// OverloadController policy (CoDel-min signal, AIMD shed, hysteretic
// recovery) and its service wiring: deterministic admission shedding in
// brownout, /readyz surfacing, batch-window shrink, and drain-through-
// brownout shutdown.
#include "serve/overload.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "data/api_vocab.hpp"
#include "features/transform.hpp"
#include "math/rng.hpp"
#include "runtime/clock.hpp"
#include "serve/scoring_service.hpp"

namespace mev::serve {
namespace {

constexpr std::size_t kDim = data::kNumApiFeatures;

math::Matrix random_counts(std::size_t rows, std::uint64_t seed) {
  math::Rng rng(seed);
  math::Matrix m(rows, kDim);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.poisson(3.0));
  return m;
}

features::FeaturePipeline make_pipeline(std::uint64_t seed) {
  auto transform = std::make_unique<features::CountTransform>();
  transform->fit(random_counts(64, seed));
  return features::FeaturePipeline(data::ApiVocab::instance(),
                                   std::move(transform));
}

std::shared_ptr<nn::Network> make_network(std::uint64_t seed) {
  nn::MlpConfig cfg;
  cfg.dims = {kDim, 16, 2};
  cfg.seed = seed;
  return std::make_shared<nn::Network>(nn::make_mlp(cfg));
}

OverloadConfig enabled_config() {
  OverloadConfig cfg;
  cfg.enabled = true;
  cfg.target_delay_ms = 5;
  cfg.interval_ms = 100;
  cfg.shed_step = 0.05;
  cfg.recover_intervals = 2;
  return cfg;
}

TEST(OverloadController, DisabledIsInert) {
  OverloadController controller{OverloadConfig{}};
  controller.record_delay(10'000);
  controller.tick(0);
  controller.tick(1'000'000);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(controller.should_shed());
  EXPECT_EQ(controller.state(), OverloadState::kHealthy);
  EXPECT_EQ(controller.shed_fraction(), 0.0);
  EXPECT_FALSE(controller.brownout());
}

TEST(OverloadController, SustainedDelayEntersBrownoutAndRampsShed) {
  OverloadController controller{enabled_config()};
  controller.tick(0);  // opens the first interval
  controller.record_delay(50);
  controller.tick(100);  // closes bad interval #1
  EXPECT_EQ(controller.state(), OverloadState::kBrownout);
  EXPECT_TRUE(controller.brownout());
  const double shed1 = controller.shed_fraction();
  EXPECT_NEAR(shed1, 0.05, 1e-6);

  controller.record_delay(50);
  controller.tick(200);  // bad interval #2: additive increase, sqrt ramp
  EXPECT_GT(controller.shed_fraction(), shed1);
}

TEST(OverloadController, TransientBurstDoesNotTrip) {
  // The CoDel property: one low-delay sample in the interval proves the
  // queue drained at least once — a burst, not a standing queue.
  OverloadController controller{enabled_config()};
  controller.tick(0);
  controller.record_delay(80);
  controller.record_delay(1);  // the burst drained
  controller.record_delay(60);
  controller.tick(100);
  EXPECT_EQ(controller.state(), OverloadState::kHealthy);
  EXPECT_EQ(controller.shed_fraction(), 0.0);
}

TEST(OverloadController, ShedFractionIsDeterministicAndExact) {
  OverloadController controller{enabled_config()};
  controller.tick(0);
  controller.record_delay(50);
  controller.tick(100);
  ASSERT_NEAR(controller.shed_fraction(), 0.05, 1e-6);
  // Fixed-point accumulator: exactly 5% of any 1000 consecutive calls.
  int shed = 0;
  for (int i = 0; i < 1000; ++i) shed += controller.should_shed() ? 1 : 0;
  EXPECT_EQ(shed, 50);
}

TEST(OverloadController, ShedIsCappedAtMaxShed) {
  OverloadConfig cfg = enabled_config();
  cfg.max_shed = 0.90;
  OverloadController controller{cfg};
  controller.tick(0);
  for (int i = 1; i <= 200; ++i) {
    controller.record_delay(1000);
    controller.tick(static_cast<std::uint64_t>(i) * 100);
  }
  EXPECT_LE(controller.shed_fraction(), 0.90 + 1e-9);
  EXPECT_GT(controller.shed_fraction(), 0.80);
}

TEST(OverloadController, HystereticRecoveryHealthyOnlyAfterGoodRun) {
  OverloadController controller{enabled_config()};
  controller.tick(0);
  controller.record_delay(50);
  controller.tick(100);
  ASSERT_EQ(controller.state(), OverloadState::kBrownout);

  // First good interval: recovering, shed halved — not yet healthy.
  controller.record_delay(1);
  controller.tick(200);
  EXPECT_EQ(controller.state(), OverloadState::kRecovering);
  EXPECT_GT(controller.shed_fraction(), 0.0);
  EXPECT_TRUE(controller.brownout());  // posture stays defensive

  // Idle (sample-free) intervals count as good; shed decays to zero and
  // only then, with enough consecutive good intervals, healthy returns.
  for (int i = 3; i <= 10; ++i)
    controller.tick(static_cast<std::uint64_t>(i) * 100);
  EXPECT_EQ(controller.state(), OverloadState::kHealthy);
  EXPECT_EQ(controller.shed_fraction(), 0.0);

  // A relapse flips straight back to brownout.
  controller.record_delay(50);
  controller.tick(1100);
  EXPECT_EQ(controller.state(), OverloadState::kBrownout);
}

/// Service-level: manual pump + FakeClock make every transition exact.
struct ServiceFixture {
  features::FeaturePipeline pipeline = make_pipeline(7);
  std::shared_ptr<nn::Network> network = make_network(11);

  ScoringService make_service(ServiceConfig config) {
    return ScoringService(pipeline, network, config);
  }
};

TEST(ServiceOverload, BrownoutShedsDeterministicallyAndRecovers) {
  ServiceFixture f;
  runtime::FakeClock clock;
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.max_batch_rows = 128;
  cfg.max_queue_delay_ms = 0;
  cfg.clock = &clock;
  cfg.overload = enabled_config();
  auto service = f.make_service(cfg);

  // Interval 1: a request ages 50ms in queue before its batch forms —
  // well over the 5ms target.
  auto slow = service.submit(random_counts(1, 1));
  clock.advance(50);
  service.pump(/*force=*/true);
  EXPECT_TRUE(slow.get().ok());

  clock.advance(60);  // cross the interval boundary
  service.pump();     // tick closes the bad interval
  EXPECT_EQ(service.overload().state(), OverloadState::kBrownout);
  EXPECT_EQ(service.stats().overload_state, 1u);
  EXPECT_GT(service.stats().shed_fraction, 0.0);
  const obs::Readiness ready = service.readiness();
  EXPECT_FALSE(ready.ready);
  EXPECT_EQ(ready.reason, "overload brownout");

  // Shedding is exact: 5% of the next 100 submissions are turned away
  // with kOverloaded, already-ready futures.
  int overloaded = 0;
  std::vector<ScoreFuture> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(service.submit(random_counts(1, 100 + i)));
    if (futures.back().wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      ScoreResult result = futures.back().get();
      ASSERT_EQ(result.rejected, RejectReason::kOverloaded);
      ++overloaded;
      futures.pop_back();
    }
  }
  EXPECT_EQ(overloaded, 5);
  EXPECT_EQ(service.stats().rejected_overloaded, 5u);

  // Brownout posture force-flushes: the 95 admitted rows drain promptly.
  while (service.pump(/*force=*/true) > 0) {
  }
  for (auto& future : futures) EXPECT_TRUE(future.get().ok());

  // Quiet intervals decay the shed fraction and restore readiness.
  for (int i = 0; i < 10; ++i) {
    clock.advance(100);
    service.pump();
  }
  EXPECT_EQ(service.overload().state(), OverloadState::kHealthy);
  EXPECT_TRUE(service.readiness().ready);
  EXPECT_EQ(service.stats().shed_fraction, 0.0);
}

TEST(ServiceOverload, ShutdownDuringBrownoutDrainsEverything) {
  ServiceFixture f;
  runtime::FakeClock clock;
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.max_batch_rows = 8;
  cfg.max_queue_delay_ms = 0;
  cfg.clock = &clock;
  cfg.overload = enabled_config();
  auto service = f.make_service(cfg);

  // Force brownout.
  auto aged = service.submit(random_counts(1, 1));
  clock.advance(50);
  service.pump(/*force=*/true);
  EXPECT_TRUE(aged.get().ok());
  clock.advance(60);
  service.pump();
  ASSERT_EQ(service.overload().state(), OverloadState::kBrownout);

  // Queue work mid-brownout, then shut down with drain: every future
  // resolves — scored or typed-rejected — none hang.
  std::vector<ScoreFuture> futures;
  for (int i = 0; i < 40; ++i)
    futures.push_back(service.submit(random_counts(1, 200 + i)));
  service.shutdown(/*drain=*/true);
  std::size_t ok = 0;
  std::size_t rejected = 0;
  for (auto& future : futures) {
    ScoreResult result = future.get();
    result.ok() ? ++ok : ++rejected;
    if (!result.ok()) {
      EXPECT_EQ(result.rejected, RejectReason::kOverloaded);
    }
  }
  EXPECT_EQ(ok + rejected, 40u);
  EXPECT_GT(ok, 0u);
  // Post-shutdown submissions fail fast.
  auto late = service.submit(random_counts(1, 999));
  EXPECT_EQ(late.get().rejected, RejectReason::kShuttingDown);
}

TEST(ServiceOverload, ThreadedShutdownDuringBrownoutIsClean) {
  // Real workers + a genuinely slow model: injected 20ms batches back the
  // queue up past the 3ms target within a few 25ms intervals, so the
  // service is actually shedding when shutdown lands. TSan-stressed in
  // CI. The invariant under test: drain completes and no future is left
  // unresolved, brownout or not.
  ServiceFixture f;
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.max_batch_rows = 4;
  cfg.max_queue_delay_ms = 0;
  cfg.overload.enabled = true;
  cfg.overload.target_delay_ms = 3;
  cfg.overload.interval_ms = 25;
  cfg.overload.shed_step = 0.2;
  auto service = f.make_service(cfg);
  ModelFaultProfile slow_model;
  slow_model.name = "slow";
  slow_model.slow_rate = 1.0;
  slow_model.slow_ms = 20;
  service.set_model_fault(slow_model);

  std::vector<ScoreFuture> futures;
  futures.reserve(120);
  for (int i = 0; i < 120; ++i)
    futures.push_back(service.submit(random_counts(1, 300 + i)));
  // Give the controller a chance to observe the standing queue.
  for (int spin = 0;
       spin < 200 && service.overload().state() == OverloadState::kHealthy;
       ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  service.shutdown(/*drain=*/true);

  std::size_t resolved = 0;
  for (auto& future : futures) {
    ScoreResult result = future.get();  // must not block: drain resolved all
    if (!result.ok()) {
      EXPECT_TRUE(result.rejected == RejectReason::kOverloaded ||
                  result.rejected == RejectReason::kQueueFull)
          << to_string(result.rejected);
    }
    ++resolved;
  }
  EXPECT_EQ(resolved, futures.size());
}

}  // namespace
}  // namespace mev::serve
