// AdminServer behavior: pure routing through handle() (every endpoint, no
// sockets), the readiness probe contract, the appended telemetry
// self-metrics, and a socket-level smoke test that speaks real HTTP to
// the listening port from this test binary.
#include <string>

#include <gtest/gtest.h>

#include "obs/admin_server.hpp"
#include "obs/http.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/clock.hpp"

#if MEV_OBS_ENABLED
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#endif

namespace {

using mev::obs::AdminServer;
using mev::obs::AdminServerConfig;
using mev::obs::MetricsRegistry;
using mev::obs::Readiness;
using mev::obs::Tracer;
using mev::obs::TracerConfig;

mev::obs::http::Request make_request(const std::string& method,
                                     const std::string& target) {
  mev::obs::http::Request request;
  request.method = method;
  request.target = target;
  request.version = "HTTP/1.1";
  return request;
}

#if MEV_OBS_ENABLED

struct AdminFixture {
  mev::runtime::FakeClock clock;
  Tracer tracer{TracerConfig{.ring_capacity = 256, .clock = &clock,
                             .enabled = true}};
  MetricsRegistry registry;

  AdminServer make(AdminServerConfig config = {}) {
    config.tracer = &tracer;
    config.metrics = &registry;
    return AdminServer(std::move(config));
  }
};

TEST(AdminServer, HealthzAlwaysAnswersOk) {
  AdminFixture f;
  AdminServer server = f.make();
  const std::string response = server.handle(make_request("GET", "/healthz"));
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\nok\n"), std::string::npos);
}

TEST(AdminServer, ReadyzFollowsTheInstalledProbe) {
  AdminFixture f;
  AdminServer server = f.make();
  // Default probe: always ready.
  EXPECT_NE(server.handle(make_request("GET", "/readyz"))
                .find("HTTP/1.1 200 OK"),
            std::string::npos);

  server.set_readiness_probe([] { return Readiness{false, "draining"}; });
  const std::string not_ready = server.handle(make_request("GET", "/readyz"));
  EXPECT_NE(not_ready.find("HTTP/1.1 503 Service Unavailable"),
            std::string::npos);
  EXPECT_NE(not_ready.find("draining\n"), std::string::npos);

  server.set_readiness_probe([] { return Readiness{true, "ok"}; });
  EXPECT_NE(server.handle(make_request("GET", "/readyz"))
                .find("HTTP/1.1 200 OK"),
            std::string::npos);
}

TEST(AdminServer, MetricsServesExpositionPlusSelfMetrics) {
  AdminFixture f;
  f.registry.counter("mev.test.queries", "queries").inc(7);
  AdminServer server = f.make();
  const std::string response = server.handle(make_request("GET", "/metrics"));
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("mev_test_queries 7\n"), std::string::npos);
  // The plane's own loss signals are always present.
  EXPECT_NE(response.find("# TYPE trace_spans_dropped_total counter\n"
                          "trace_spans_dropped_total 0\n"),
            std::string::npos);
  EXPECT_NE(response.find("# TYPE metrics_series gauge\n"),
            std::string::npos);
}

TEST(AdminServer, TracezServesRecentSpansAsJson) {
  AdminFixture f;
  {
    auto span = f.tracer.span("mev.test.op");
    span.arg("rows", 3.0);
    f.clock.advance(2);
  }
  AdminServer server = f.make();
  const std::string response = server.handle(make_request("GET", "/tracez"));
  EXPECT_NE(response.find("application/json"), std::string::npos);
  EXPECT_NE(response.find("\"name\":\"mev.test.op\""), std::string::npos);
  EXPECT_NE(response.find("\"dur_us\":2000"), std::string::npos);
  EXPECT_NE(response.find("\"args\":{\"rows\":3}"), std::string::npos);
  EXPECT_NE(response.find("\"dropped\":0"), std::string::npos);
}

TEST(AdminServer, VarzServesTheJsonSnapshot) {
  AdminFixture f;
  f.registry.counter("mev.test.queries").inc(2);
  AdminServer server = f.make();
  const std::string response = server.handle(make_request("GET", "/varz"));
  EXPECT_NE(response.find("application/json"), std::string::npos);
  // The snapshot carries the caller's series plus the admin plane's own
  // request counter (incremented by this very scrape).
  EXPECT_NE(response.find("\"mev.test.queries\":2"), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"mev.obs.admin.requests\":1"), std::string::npos)
      << response;
}

TEST(AdminServer, UnknownPathsAnswer404AndNonGet405) {
  AdminFixture f;
  AdminServer server = f.make();
  EXPECT_NE(server.handle(make_request("GET", "/nope"))
                .find("HTTP/1.1 404 Not Found"),
            std::string::npos);
  EXPECT_NE(server.handle(make_request("POST", "/metrics"))
                .find("HTTP/1.1 405 Method Not Allowed"),
            std::string::npos);
  // Query strings are stripped before routing.
  EXPECT_NE(server.handle(make_request("GET", "/healthz?verbose=1"))
                .find("HTTP/1.1 200 OK"),
            std::string::npos);
}

TEST(AdminServer, RequestsAreCountedInTheRegistry) {
  AdminFixture f;
  AdminServer server = f.make();
  (void)server.handle(make_request("GET", "/healthz"));
  (void)server.handle(make_request("GET", "/nope"));
  EXPECT_EQ(f.registry.counter("mev.obs.admin.requests").value(), 2u);
}

TEST(AdminServer, StartStopIsIdempotentAndResolvesEphemeralPorts) {
  AdminFixture f;
  AdminServerConfig config;
  config.enabled = true;
  config.port = 0;  // kernel-assigned
  AdminServer server = f.make(std::move(config));
  ASSERT_TRUE(server.start());
  EXPECT_TRUE(server.running());
  EXPECT_NE(server.port(), 0);
  EXPECT_TRUE(server.start());  // already running: still true
  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
  server.stop();  // idempotent
}

// Socket-level smoke: speak real HTTP/1.1 to the bound port, torn into
// two sends, and check the response framing end to end.
std::string fetch(std::uint16_t port, const std::string& request_text) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  // Split the request at an awkward boundary to exercise torn reads.
  const std::size_t half = request_text.size() / 2;
  (void)!::send(fd, request_text.data(), half, 0);
  (void)!::send(fd, request_text.data() + half, request_text.size() - half,
                0);
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0)
    response.append(buffer, static_cast<std::size_t>(n));
  ::close(fd);
  return response;
}

TEST(AdminServer, SocketSmokeHealthzAndMetrics) {
  AdminFixture f;
  f.registry.counter("mev.test.smoke", "smoke").inc(42);
  AdminServerConfig config;
  config.enabled = true;
  AdminServer server = f.make(std::move(config));
  ASSERT_TRUE(server.start());
  const std::uint16_t port = server.port();
  ASSERT_NE(port, 0);

  const std::string health =
      fetch(port, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("ok\n"), std::string::npos);

  const std::string metrics =
      fetch(port, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(metrics.find("mev_test_smoke 42\n"), std::string::npos)
      << metrics;

  const std::string missing =
      fetch(port, "GET /bogus HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(missing.find("HTTP/1.1 404 Not Found"), std::string::npos);

  const std::string malformed = fetch(port, "garbage\r\n\r\n");
  EXPECT_NE(malformed.find("HTTP/1.1 400 Bad Request"), std::string::npos);
  server.stop();
}

TEST(AdminServer, SocketReadyzFlipsWithTheProbe) {
  AdminFixture f;
  AdminServerConfig config;
  config.enabled = true;
  AdminServer server = f.make(std::move(config));
  ASSERT_TRUE(server.start());
  const std::uint16_t port = server.port();

  EXPECT_NE(fetch(port, "GET /readyz HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 200 OK"),
            std::string::npos);
  server.set_readiness_probe([] { return Readiness{false, "draining"}; });
  const std::string draining = fetch(port, "GET /readyz HTTP/1.1\r\n\r\n");
  EXPECT_NE(draining.find("HTTP/1.1 503 Service Unavailable"),
            std::string::npos);
  EXPECT_NE(draining.find("draining\n"), std::string::npos);
  server.stop();
}

#endif  // MEV_OBS_ENABLED

TEST(AdminServer, ApiIsCallableInEveryBuildConfiguration) {
  // In stub builds start() reports failure and handle() answers 404; call
  // sites compile unchanged either way.
  AdminServerConfig config;
  config.enabled = true;
  AdminServer server(std::move(config));
  server.set_readiness_probe([] { return Readiness{}; });
  if (server.start()) {
    EXPECT_NE(server.port(), 0);
    server.stop();
  } else {
    EXPECT_EQ(server.port(), 0);
    EXPECT_FALSE(server.running());
  }
  (void)server.handle(make_request("GET", "/healthz"));
  SUCCEED();
}

}  // namespace
