// Injectable monotonic clock. Every time-dependent piece of the runtime
// layer (backoff sleeps, circuit-breaker cooldowns, deadline budgets,
// injected timeout latency) goes through a Clock so tests drive time with
// a FakeClock — the retry/breaker suites never really sleep.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace mev::runtime {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic milliseconds since an arbitrary epoch.
  virtual std::uint64_t now_ms() = 0;

  /// Monotonic microseconds since the same epoch. The default derives
  /// from now_ms() so fake clocks stay consistent automatically; real
  /// clocks override it for sub-millisecond latency accounting (the
  /// serving layer's histograms).
  virtual std::uint64_t now_us() { return now_ms() * 1000; }

  /// Blocks (or simulates blocking) for `ms` milliseconds.
  virtual void sleep_ms(std::uint64_t ms) = 0;
};

/// std::chrono::steady_clock + std::this_thread::sleep_for.
class SystemClock final : public Clock {
 public:
  std::uint64_t now_ms() override;
  std::uint64_t now_us() override;
  void sleep_ms(std::uint64_t ms) override;

  /// Shared process-wide instance (stateless, safe to share).
  static SystemClock& instance();
};

/// Manual clock for tests: sleep_ms advances time instantly and records
/// the requested duration. `now_` is atomic so a test driving advance()
/// can race server/worker threads reading the clock (the common "inject
/// a FakeClock into a threaded service" pattern); sleep_ms() itself is
/// still single-caller (the sleeps_ log is unsynchronized).
class FakeClock final : public Clock {
 public:
  explicit FakeClock(std::uint64_t start_ms = 0) : now_(start_ms) {}

  std::uint64_t now_ms() override {
    return now_.load(std::memory_order_relaxed);
  }
  void sleep_ms(std::uint64_t ms) override {
    now_.fetch_add(ms, std::memory_order_relaxed);
    sleeps_.push_back(ms);
  }

  /// Advances time without recording a sleep.
  void advance(std::uint64_t ms) {
    now_.fetch_add(ms, std::memory_order_relaxed);
  }

  const std::vector<std::uint64_t>& sleeps() const noexcept {
    return sleeps_;
  }
  std::uint64_t total_slept_ms() const noexcept;

 private:
  std::atomic<std::uint64_t> now_;
  std::vector<std::uint64_t> sleeps_;
};

}  // namespace mev::runtime
