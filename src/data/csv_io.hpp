// CSV persistence for count datasets, so generated corpora can be inspected
// or reused across runs without regeneration.
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.hpp"

namespace mev::data {

/// Writes `label,count_0,...,count_{d-1}` rows with a header line.
void write_csv(const CountDataset& ds, std::ostream& os);
void write_csv(const CountDataset& ds, const std::string& path);

/// Reads a CSV written by write_csv. Throws std::runtime_error on
/// malformed input (ragged rows, non-numeric fields, bad labels).
CountDataset read_csv(std::istream& is);
CountDataset read_csv(const std::string& path);

}  // namespace mev::data
