// Mini-batch training loop with shuffling, optional validation-based early
// stopping, and per-epoch history. Matches the paper's training regime
// (§III-B: Adam, lr 0.001, batch 256).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "math/matrix.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"

namespace mev::obs {
class Tracer;
class MetricsRegistry;
}  // namespace mev::obs

namespace mev::nn {

enum class OptimizerKind { kSgd, kAdam };

struct TrainConfig {
  std::size_t epochs = 30;
  std::size_t batch_size = 256;
  float learning_rate = 0.001f;
  OptimizerKind optimizer = OptimizerKind::kAdam;
  float momentum = 0.9f;       // SGD only
  float weight_decay = 0.0f;
  /// Softmax temperature used in the loss (defensive distillation trains
  /// the student at high T; normal training uses 1).
  float temperature = 1.0f;
  std::uint64_t shuffle_seed = 7;
  /// Stop if validation accuracy has not improved for this many epochs
  /// (0 disables early stopping).
  std::size_t early_stopping_patience = 0;
  /// Called after every epoch with (epoch, train_loss, val_accuracy or -1).
  std::function<void(std::size_t, double, double)> on_epoch;
  /// Observability sinks: per-epoch mev.nn.train.epoch spans (loss, lr,
  /// wall time) and mev.nn.train.* counters/gauges. nullptr = the ambient
  /// obs::current_tracer()/current_registry() (no-ops unless opted in).
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

struct EpochStats {
  double train_loss = 0.0;
  double val_accuracy = -1.0;  // -1 when no validation set given
};

struct TrainHistory {
  std::vector<EpochStats> epochs;
  std::size_t best_epoch = 0;
  double best_val_accuracy = -1.0;
  bool early_stopped = false;
};

/// Hard-label training set.
struct LabeledData {
  math::Matrix x;            // n x features
  std::vector<int> labels;   // n
};

/// Trains with integer labels via softmax cross-entropy.
TrainHistory train(Network& net, const LabeledData& train_data,
                   const TrainConfig& config,
                   const LabeledData* validation = nullptr);

/// Trains with soft probability targets (distillation student).
TrainHistory train_soft(Network& net, const math::Matrix& x,
                        const math::Matrix& soft_targets,
                        const TrainConfig& config,
                        const LabeledData* validation = nullptr);

/// Fraction of samples whose argmax prediction matches the label.
double accuracy(const Network& net, const math::Matrix& x,
                const std::vector<int>& labels);

}  // namespace mev::nn
