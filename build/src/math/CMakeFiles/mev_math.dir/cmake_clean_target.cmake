file(REMOVE_RECURSE
  "libmev_math.a"
)
