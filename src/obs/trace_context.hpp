// TraceContext: the copyable request-correlation handle carried through
// every serving layer — the HTTP frontend, the submission shards, the
// micro-batcher, the scoring worker, and the completion callback all see
// the same 64-bit trace id, so one request's spans can be reassembled
// into a tree no matter which threads executed them.
//
//   trace_id   identity of the whole request (nonzero = correlated)
//   trace_hi   high 64 bits of an incoming W3C 128-bit trace id, carried
//              only so responses echo the caller's id byte-for-byte
//   span_id    the current span within the trace; a child span records it
//              as parent_span_id and substitutes its own
//
// The W3C `traceparent` header (https://www.w3.org/TR/trace-context/)
//
//   00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01
//   ^^ version  ^^^^ 32-hex trace-id    ^^^^ 16-hex parent ^^ flags
//
// is parsed permissively-but-exactly: any malformation (bad version,
// wrong length, non-hex, all-zero ids) yields an *invalid* context — the
// request is still served, it just starts a fresh trace. A malformed
// header is never an error: correlation is a diagnostic, not a contract.
//
// This file is compiled in every build mode (it is pure data + string
// processing with no tracing machinery): serve::Request embeds a
// TraceContext and the net layer stamps correlation headers even when
// MEV_ENABLE_OBS=OFF stubs out the Tracer itself.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace mev::obs {

struct TraceContext {
  std::uint64_t trace_id = 0;  // low 64 bits; 0 = uncorrelated
  std::uint64_t trace_hi = 0;  // high 64 bits of a W3C id (echo only)
  std::uint64_t span_id = 0;   // current span / parent for children

  bool valid() const noexcept { return trace_id != 0; }
};

/// Parses a W3C `traceparent` header value. Returns an invalid context
/// (trace_id == 0) on ANY malformation: wrong length, missing dashes,
/// non-hex digits, version "ff", an all-zero trace-id or parent-id. The
/// low 64 bits of the 128-bit trace id become the internal identity; a
/// header whose low half is all zero is treated as malformed too (the
/// identity must be nonzero).
TraceContext parse_traceparent(std::string_view header) noexcept;

/// "00-<32 hex trace>-<16 hex span>-01" for outgoing propagation.
std::string format_traceparent(const TraceContext& ctx);

/// The full 32-hex trace id (trace_hi then trace_id) — what responses
/// stamp into X-Trace-Id so callers can grep their own id back.
std::string format_trace_id(const TraceContext& ctx);

/// 16-hex form of one 64-bit id.
std::string format_hex64(std::uint64_t id);

/// Parses exactly 16 lowercase/uppercase hex chars; false on anything
/// else (the /requestz?trace_id= filter).
bool parse_hex64(std::string_view s, std::uint64_t* out) noexcept;

/// Deterministically seeded 64-bit id allocator: a splitmix64 stream over
/// an atomic counter. The same seed yields the same id sequence, so a
/// tracer seeded from a runtime::FakeClock produces byte-identical
/// traces across runs; seeded from the system clock, ids are distinct
/// across processes. next() never returns 0.
class TraceIdGenerator {
 public:
  explicit TraceIdGenerator(std::uint64_t seed = 0) noexcept
      : state_(seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL) {}

  std::uint64_t next() noexcept {
    std::uint64_t x =
        state_.fetch_add(0x9e3779b97f4a7c15ULL, std::memory_order_relaxed);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x != 0 ? x : 1;
  }

 private:
  std::atomic<std::uint64_t> state_;
};

}  // namespace mev::obs
