#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>
#include <utility>

namespace mev::obs {

namespace {

/// Bucket index for a value: 0 holds {0}, bucket i holds [2^(i-1), 2^i).
std::size_t bucket_of(std::uint64_t value) noexcept {
  if (value == 0) return 0;
  const std::size_t b = static_cast<std::size_t>(std::bit_width(value));
  return std::min(b, Log2Histogram::kBuckets - 1);
}

/// Inclusive value range covered by bucket i.
std::pair<double, double> bucket_range(std::size_t i) noexcept {
  if (i == 0) return {0.0, 0.0};
  const double lo = static_cast<double>(std::uint64_t{1} << (i - 1));
  return {lo, 2.0 * lo};
}

}  // namespace

std::size_t Log2Histogram::bucket_index(std::uint64_t value) noexcept {
  return bucket_of(value);
}

void Log2Histogram::merge_counts(
    const std::array<std::uint64_t, kBuckets>& bucket_counts,
    std::uint64_t count, double sum, std::uint64_t min_value,
    std::uint64_t max_value) noexcept {
  if (count == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += bucket_counts[i];
  min_ = count_ == 0 ? min_value : std::min(min_, min_value);
  max_ = std::max(max_, max_value);
  sum_ += sum;
  count_ += count;
}

void Log2Histogram::record(std::uint64_t value) noexcept {
  ++buckets_[bucket_of(value)];
  if (count_ == 0 || value < min_) min_ = value;
  max_ = std::max(max_, value);
  sum_ += static_cast<double>(value);
  ++count_;
}

void Log2Histogram::merge(const Log2Histogram& other) noexcept {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

void Log2Histogram::reset() noexcept { *this = Log2Histogram{}; }

double Log2Histogram::mean() const noexcept {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::uint64_t Log2Histogram::bucket_upper_bound(std::size_t i) noexcept {
  if (i == 0) return 0;
  const std::size_t shift = std::min<std::size_t>(i, 63);
  return (std::uint64_t{1} << shift) - 1;
}

double Log2Histogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target observation, 1-based, nearest-rank style.
  const double rank =
      std::max(1.0, p / 100.0 * static_cast<double>(count_));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets_[i];
    if (rank > static_cast<double>(cumulative)) continue;
    auto [lo, hi] = bucket_range(i);
    // Interpolate position within the bucket, clamp to observed extremes.
    const double frac =
        (rank - before) / static_cast<double>(buckets_[i]);
    const double v = lo + frac * (hi - lo);
    return std::clamp(v, static_cast<double>(min_),
                      static_cast<double>(max_));
  }
  return static_cast<double>(max_);
}

LatencySummary summarize(const Log2Histogram& h) {
  LatencySummary s;
  s.count = h.count();
  s.mean = h.mean();
  s.p50 = h.percentile(50.0);
  s.p95 = h.percentile(95.0);
  s.p99 = h.percentile(99.0);
  s.max = h.max();
  return s;
}

}  // namespace mev::obs
