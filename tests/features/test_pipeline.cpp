#include "features/pipeline.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "features/transform.hpp"

namespace mev::features {
namespace {

FeaturePipeline make_pipeline() {
  const auto& vocab = data::ApiVocab::instance();
  auto transform = std::make_unique<CountTransform>();
  math::Matrix counts(2, vocab.size());
  counts(0, 0) = 4;
  counts(1, 1) = 2;
  transform->fit(counts);
  return FeaturePipeline(vocab, std::move(transform));
}

TEST(Pipeline, NullTransformThrows) {
  EXPECT_THROW(FeaturePipeline(data::ApiVocab::instance(), nullptr),
               std::invalid_argument);
}

TEST(Pipeline, FeaturesFromLogMatchManualPath) {
  const FeaturePipeline pipeline = make_pipeline();
  data::ApiLog log;
  log.append_calls(data::ApiVocab::instance().name(0), 2);
  const auto via_log = pipeline.features_from_log(log);
  const auto counts = pipeline.extractor().extract(log);
  const auto via_counts = pipeline.features_from_counts_row(counts);
  EXPECT_EQ(via_log, via_counts);
  EXPECT_EQ(via_log[0], 0.5f);  // 2 of max 4
}

TEST(Pipeline, BatchFeatures) {
  const FeaturePipeline pipeline = make_pipeline();
  math::Matrix counts(1, data::kNumApiFeatures);
  counts(0, 1) = 1;
  const math::Matrix f = pipeline.features_from_counts(counts);
  EXPECT_EQ(f(0, 1), 0.5f);  // 1 of max 2
}

TEST(Pipeline, CopyIsDeep) {
  const FeaturePipeline pipeline = make_pipeline();
  const FeaturePipeline copy = pipeline;  // NOLINT(performance-*)
  EXPECT_EQ(copy.dim(), pipeline.dim());
  EXPECT_EQ(copy.transform().name(), "count");
}

TEST(Pipeline, DimMatchesVocab) {
  EXPECT_EQ(make_pipeline().dim(), data::kNumApiFeatures);
}

}  // namespace
}  // namespace mev::features
