// First-order optimizers. The paper trains the substitute model with Adam
// (lr = 0.001); SGD with momentum and weight decay is provided for the
// "traditional robustness" baselines mentioned in §I.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace mev::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update using the accumulated gradients in `params`.
  /// The same `params` vector (same order, same shapes) must be passed on
  /// every call; per-parameter state is keyed by position.
  virtual void step(const std::vector<ParamRef>& params) = 0;

  virtual void set_learning_rate(float lr) noexcept = 0;
  virtual float learning_rate() const noexcept = 0;
  virtual std::string name() const = 0;
};

struct SgdConfig {
  float learning_rate = 0.01f;
  float momentum = 0.0f;
  float weight_decay = 0.0f;  // L2 penalty coefficient
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(SgdConfig config);
  void step(const std::vector<ParamRef>& params) override;
  void set_learning_rate(float lr) noexcept override { config_.learning_rate = lr; }
  float learning_rate() const noexcept override { return config_.learning_rate; }
  std::string name() const override { return "sgd"; }

 private:
  SgdConfig config_;
  std::vector<math::Matrix> velocity_;
};

struct AdamConfig {
  float learning_rate = 0.001f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  float weight_decay = 0.0f;
};

class Adam final : public Optimizer {
 public:
  explicit Adam(AdamConfig config);
  void step(const std::vector<ParamRef>& params) override;
  void set_learning_rate(float lr) noexcept override { config_.learning_rate = lr; }
  float learning_rate() const noexcept override { return config_.learning_rate; }
  std::string name() const override { return "adam"; }

 private:
  AdamConfig config_;
  std::vector<math::Matrix> m_;
  std::vector<math::Matrix> v_;
  long step_count_ = 0;
};

}  // namespace mev::nn
