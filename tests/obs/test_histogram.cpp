// Regression tests pinning obs::Log2Histogram's documented accuracy
// contract: power-of-two buckets, one-octave percentile error bound, and
// the exact p50/p95/p99 values for a known distribution. These run in
// every build configuration — the histogram is never compiled out (the
// serving layer's stats depend on it unconditionally).
#include <cstdint>
#include <type_traits>

#include <gtest/gtest.h>

#include "obs/histogram.hpp"
#include "serve/stats.hpp"

namespace {

using mev::obs::Log2Histogram;

TEST(Log2Histogram, ServeReExportIsTheSameType) {
  static_assert(
      std::is_same_v<mev::serve::Log2Histogram, mev::obs::Log2Histogram>);
  static_assert(
      std::is_same_v<mev::serve::LatencySummary, mev::obs::LatencySummary>);
}

// The pinned regression for the header's accuracy contract: record
// 1..1000 once each and check the exact interpolated percentiles.
//
// Bucket occupancy: bucket i holds [2^(i-1), 2^i), so bucket 9 holds
// 256..511 (256 values, cumulative 511) and bucket 10 holds 512..1000
// (489 values, cumulative 1000).
TEST(Log2Histogram, PercentileRegressionForUniform1To1000) {
  Log2Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);

  // p50: rank 500 lands in bucket 9 at fraction (500-255)/256, so the
  // interpolated value is 256 + 245 = 501 exactly (true p50 is 500).
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 501.0);

  // p95: rank 950 lands in bucket 10 at fraction (950-511)/489:
  // 512 + (439/489)*512 ~= 971.648 (true p95 is 950 — same octave).
  EXPECT_NEAR(h.percentile(95.0), 512.0 + (439.0 / 489.0) * 512.0, 1e-9);
  EXPECT_NEAR(h.percentile(95.0), 971.648, 1e-3);

  // p99: rank 990 interpolates past the observed maximum and clamps to
  // it: exactly 1000 (true p99 is 990).
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 1000.0);

  // The documented bound: every reported percentile lies within one
  // octave (a factor of 2) of the true percentile of this distribution.
  const double true_p[] = {500.0, 950.0, 990.0};
  const double got_p[] = {h.percentile(50.0), h.percentile(95.0),
                          h.percentile(99.0)};
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(got_p[i], true_p[i] / 2.0);
    EXPECT_LT(got_p[i], true_p[i] * 2.0);
  }

  // Exact moments, per the contract.
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
}

TEST(Log2Histogram, BucketUpperBoundsArePowerOfTwoMinusOne) {
  EXPECT_EQ(Log2Histogram::bucket_upper_bound(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_upper_bound(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_upper_bound(2), 3u);
  EXPECT_EQ(Log2Histogram::bucket_upper_bound(10), 1023u);
  EXPECT_EQ(Log2Histogram::bucket_upper_bound(39),
            (std::uint64_t{1} << 39) - 1);
  // Past 63 the shift saturates instead of invoking UB.
  EXPECT_EQ(Log2Histogram::bucket_upper_bound(200),
            (std::uint64_t{1} << 63) - 1);
}

TEST(Log2Histogram, BucketCountsCoverEveryRecordedValue) {
  Log2Histogram h;
  for (std::uint64_t v = 0; v <= 100; ++v) h.record(v);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i)
    total += h.bucket_count(i);
  EXPECT_EQ(total, h.count());
  EXPECT_EQ(h.bucket_count(0), 1u);  // the lone zero
  EXPECT_EQ(h.bucket_count(1), 1u);  // {1}
  EXPECT_EQ(h.bucket_count(7), 37u); // 64..100
  EXPECT_EQ(h.bucket_count(Log2Histogram::kBuckets), 0u);  // out of range
}

TEST(Log2Histogram, SummaryDigestsMatchPercentiles) {
  Log2Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const mev::obs::LatencySummary s = mev::obs::summarize(h);
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.p50, h.percentile(50.0));
  EXPECT_DOUBLE_EQ(s.p95, h.percentile(95.0));
  EXPECT_DOUBLE_EQ(s.p99, h.percentile(99.0));
  EXPECT_EQ(s.max, 1000u);
}

}  // namespace
