#include "features/extractor.hpp"

#include <gtest/gtest.h>

namespace mev::features {
namespace {

using data::ApiVocab;

TEST(Extractor, CountsOccurrences) {
  const auto& vocab = ApiVocab::instance();
  const CountExtractor extractor(vocab);
  data::ApiLog log;
  log.append_calls("WriteFile", 3);
  log.append_calls("WinExec", 1);
  const auto counts = extractor.extract(log);
  EXPECT_EQ(counts[*vocab.index_of("writefile")], 3.0f);
  EXPECT_EQ(counts[*vocab.index_of("winexec")], 1.0f);
}

TEST(Extractor, UnknownApisAreIgnored) {
  const CountExtractor extractor(ApiVocab::instance());
  data::ApiLog log;
  log.append_calls("NotARealApiName", 5);
  const auto counts = extractor.extract(log);
  double total = 0;
  for (float c : counts) total += c;
  EXPECT_EQ(total, 0.0);
}

TEST(Extractor, EmptyLogGivesZeroVector) {
  const CountExtractor extractor(ApiVocab::instance());
  const auto counts = extractor.extract(data::ApiLog{});
  EXPECT_EQ(counts.size(), data::kNumApiFeatures);
  for (float c : counts) EXPECT_EQ(c, 0.0f);
}

TEST(Extractor, CaseInsensitive) {
  const auto& vocab = ApiVocab::instance();
  const CountExtractor extractor(vocab);
  data::ApiLog log;
  log.append_calls("WRITEFILE", 1);
  log.append_calls("writefile", 1);
  EXPECT_EQ(extractor.extract(log)[*vocab.index_of("writefile")], 2.0f);
}

TEST(Extractor, BatchExtraction) {
  const CountExtractor extractor(ApiVocab::instance());
  data::ApiLog a, b;
  a.append_calls("WriteFile", 1);
  b.append_calls("WriteFile", 4);
  const std::vector<data::ApiLog> logs{a, b};
  const math::Matrix m = extractor.extract_batch(logs);
  EXPECT_EQ(m.rows(), 2u);
  const auto idx = *ApiVocab::instance().index_of("writefile");
  EXPECT_EQ(m(0, idx), 1.0f);
  EXPECT_EQ(m(1, idx), 4.0f);
}

}  // namespace
}  // namespace mev::features
