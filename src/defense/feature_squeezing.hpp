// Feature squeezing (§II-C.3, Xu et al. 2018): compare the model's
// prediction on the original input with its prediction on a "squeezed"
// input; if the L1 distance between the two probability vectors exceeds a
// threshold, the sample is flagged as adversarial.
//
// Squeezers provided:
//  * BitDepthSqueezer — quantizes each feature in [0,1] to 2^bits levels;
//  * BinarySqueezer   — thresholds features at 0.5 (1-bit squeeze).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "defense/classifier.hpp"
#include "math/matrix.hpp"
#include "nn/network.hpp"

namespace mev::defense {

class Squeezer {
 public:
  virtual ~Squeezer() = default;
  virtual math::Matrix squeeze(const math::Matrix& features) const = 0;
  virtual std::string name() const = 0;
  virtual std::unique_ptr<Squeezer> clone() const = 0;
};

class BitDepthSqueezer final : public Squeezer {
 public:
  explicit BitDepthSqueezer(int bits);
  math::Matrix squeeze(const math::Matrix& features) const override;
  std::string name() const override;
  std::unique_ptr<Squeezer> clone() const override;
  int bits() const noexcept { return bits_; }

 private:
  int bits_;
};

class BinarySqueezer final : public Squeezer {
 public:
  explicit BinarySqueezer(float threshold = 0.5f) : threshold_(threshold) {}
  math::Matrix squeeze(const math::Matrix& features) const override;
  std::string name() const override { return "binary"; }
  std::unique_ptr<Squeezer> clone() const override;

 private:
  float threshold_;
};

/// The squeezing detector + classifier.
class FeatureSqueezing final : public Classifier {
 public:
  FeatureSqueezing(std::shared_ptr<nn::Network> model,
                   std::unique_ptr<Squeezer> squeezer, double threshold);

  /// Per-row L1 distance between P(original) and P(squeezed).
  std::vector<double> scores(const math::Matrix& features);

  /// True where score > threshold (flagged as adversarial).
  std::vector<bool> is_adversarial(const math::Matrix& features);

  /// Flagged rows are classified malware; the rest get the model verdict.
  std::vector<int> classify(const math::Matrix& features) override;
  std::string name() const override { return "feature-squeezing"; }

  double threshold() const noexcept { return threshold_; }

  /// Picks the threshold as the `percentile`-th percentile of scores on
  /// legitimate (clean + malware) calibration data, so roughly
  /// (100 - percentile)% of legitimate traffic is flagged.
  static double calibrate_threshold(const nn::Network& model,
                                    const Squeezer& squeezer,
                                    const math::Matrix& legitimate_features,
                                    double percentile = 95.0);

 private:
  std::shared_ptr<nn::Network> model_;
  std::unique_ptr<nn::InferenceSession> session_;
  std::unique_ptr<Squeezer> squeezer_;
  double threshold_;
};

}  // namespace mev::defense
