// Watchdog stall detection: deterministic threshold tests via manual
// poll() with fake timestamps, the monitor thread against the real
// clock, and the service-level story — a wedged worker is detected,
// siblings keep serving, and shutdown with a stalled worker still
// drains every future.
#include "serve/watchdog.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "data/api_vocab.hpp"
#include "features/transform.hpp"
#include "math/rng.hpp"
#include "serve/chaos.hpp"
#include "serve/scoring_service.hpp"

namespace mev::serve {
namespace {

WatchdogConfig manual_config(std::uint64_t stall_ms = 30) {
  WatchdogConfig cfg;
  cfg.enabled = false;  // no monitor thread: tests drive poll() by hand
  cfg.stall_ms = stall_ms;
  return cfg;
}

TEST(Watchdog, IdleWorkerNeverStalls) {
  Watchdog watchdog(1, manual_config());
  watchdog.set_idle(0, true);
  EXPECT_EQ(watchdog.poll(0), 0u);
  EXPECT_EQ(watchdog.poll(100), 0u);
  EXPECT_EQ(watchdog.poll(10'000), 0u);
  EXPECT_FALSE(watchdog.stalled(0));
  EXPECT_EQ(watchdog.stall_events(), 0u);
}

TEST(Watchdog, HeartbeatKeepsWorkerHealthy) {
  Watchdog watchdog(1, manual_config());
  for (std::uint64_t now = 0; now <= 500; now += 10) {
    watchdog.heartbeat(0);
    EXPECT_EQ(watchdog.poll(now), 0u) << "at t=" << now;
  }
  EXPECT_EQ(watchdog.stall_events(), 0u);
}

TEST(Watchdog, StallNeedsTheFullWindow) {
  Watchdog watchdog(1, manual_config(30));
  EXPECT_EQ(watchdog.poll(0), 0u);  // first sample
  EXPECT_EQ(watchdog.poll(29), 0u);
  EXPECT_FALSE(watchdog.stalled(0));
  EXPECT_EQ(watchdog.poll(30), 1u);  // threshold inclusive
  EXPECT_TRUE(watchdog.stalled(0));
}

TEST(Watchdog, StallDetectedAndRecovered) {
  Watchdog watchdog(2, manual_config(30));
  watchdog.set_idle(1, true);  // a parked sibling stays healthy
  watchdog.heartbeat(0);
  EXPECT_EQ(watchdog.poll(0), 0u);

  // Worker 0 goes silent while non-idle: stalled once the window lapses.
  EXPECT_EQ(watchdog.poll(30), 1u);
  EXPECT_TRUE(watchdog.stalled(0));
  EXPECT_FALSE(watchdog.stalled(1));
  EXPECT_EQ(watchdog.stalled_count(), 1u);
  EXPECT_EQ(watchdog.stall_events(), 1u);
  EXPECT_EQ(watchdog.recoveries(), 0u);

  // A heartbeat is proof of life: the next poll clears the verdict.
  watchdog.heartbeat(0);
  EXPECT_EQ(watchdog.poll(40), 0u);
  EXPECT_FALSE(watchdog.stalled(0));
  EXPECT_EQ(watchdog.stalled_count(), 0u);
  EXPECT_EQ(watchdog.recoveries(), 1u);
  // The stall clock rearmed at the recovery sample, not the old one.
  EXPECT_EQ(watchdog.poll(69), 0u);
  EXPECT_EQ(watchdog.poll(70), 1u);
}

TEST(Watchdog, TransitionHookFiresOnBothEdges) {
  Watchdog watchdog(1, manual_config(30));
  std::vector<std::pair<std::size_t, bool>> transitions;
  watchdog.set_transition_hook([&](std::size_t worker, bool stalled) {
    transitions.emplace_back(worker, stalled);
  });
  watchdog.poll(0);
  watchdog.poll(30);   // healthy → stalled
  watchdog.poll(60);   // still stalled: no duplicate event
  watchdog.heartbeat(0);
  watchdog.poll(70);   // stalled → healthy
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0], (std::pair<std::size_t, bool>{0, true}));
  EXPECT_EQ(transitions[1], (std::pair<std::size_t, bool>{0, false}));
}

TEST(Watchdog, MonitorThreadDetectsAgainstTheRealClock) {
  WatchdogConfig cfg;
  cfg.enabled = true;
  cfg.stall_ms = 20;
  cfg.poll_ms = 5;
  Watchdog watchdog(1, cfg);
  watchdog.start();  // worker 0 is born non-idle and never beats

  for (int spin = 0; spin < 200 && !watchdog.stalled(0); ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(watchdog.stalled(0));
  EXPECT_GE(watchdog.stall_events(), 1u);

  watchdog.heartbeat(0);
  for (int spin = 0; spin < 200 && watchdog.stalled(0); ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(watchdog.stalled(0));
  EXPECT_GE(watchdog.recoveries(), 1u);
  watchdog.stop();
}

// ---------------------------------------------------------------------------
// Service-level: a stalling model wedges a worker; the watchdog notices,
// siblings keep the service live, and shutdown drains cleanly even with
// the stall in flight.

constexpr std::size_t kDim = data::kNumApiFeatures;

math::Matrix random_counts(std::size_t rows, std::uint64_t seed) {
  math::Rng rng(seed);
  math::Matrix m(rows, kDim);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.poisson(3.0));
  return m;
}

features::FeaturePipeline make_pipeline(std::uint64_t seed) {
  auto transform = std::make_unique<features::CountTransform>();
  transform->fit(random_counts(64, seed));
  return features::FeaturePipeline(data::ApiVocab::instance(),
                                   std::move(transform));
}

std::shared_ptr<nn::Network> make_network(std::uint64_t seed) {
  nn::MlpConfig cfg;
  cfg.dims = {kDim, 16, 2};
  cfg.seed = seed;
  return std::make_shared<nn::Network>(nn::make_mlp(cfg));
}

TEST(ServiceWatchdog, StalledWorkerIsDetectedSiblingsServeShutdownDrains) {
  features::FeaturePipeline pipeline = make_pipeline(7);
  auto network = make_network(11);
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.max_batch_rows = 2;
  cfg.max_queue_delay_ms = 1;
  cfg.watchdog.enabled = true;
  cfg.watchdog.stall_ms = 25;
  cfg.watchdog.poll_ms = 5;
  ScoringService service(pipeline, network, cfg);

  // The first two batches wedge their worker for 200ms each — an order of
  // magnitude past the 25ms stall threshold sampled every 5ms.
  ModelFaultProfile stall;
  stall.name = "stalling";
  stall.stall_batches = 2;
  stall.stall_ms = 200;
  service.set_model_fault(stall);

  std::vector<ScoreFuture> futures;
  futures.push_back(service.submit(random_counts(1, 1)));
  // Wait for the watchdog to flag the wedged worker.
  for (int spin = 0; spin < 400 && service.stats().worker_stalls == 0; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(service.stats().worker_stalls, 1u);

  // The service stays live: new submissions land on (or are stolen by)
  // the healthy sibling and still resolve.
  for (int i = 0; i < 10; ++i)
    futures.push_back(service.submit(random_counts(1, 100 + i)));

  // Shutdown while a stall may still be in flight: drain must complete
  // and leave no future unresolved.
  service.shutdown(/*drain=*/true);
  for (auto& future : futures) {
    ScoreResult result = future.get();
    EXPECT_TRUE(result.ok()) << to_string(result.rejected);
  }

  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.worker_stalls, 1u);
  // Recoveries never outnumber stalls; whether the final recovery poll
  // landed before the monitor stopped is a benign race, so equality is
  // not asserted here (Watchdog.StallDetectedAndRecovered pins it).
  EXPECT_LE(stats.worker_recoveries, stats.worker_stalls);
}

}  // namespace
}  // namespace mev::serve
