// Threat models (§II-B): what the attacker knows.
#pragma once

#include <cstdint>
#include <string>

namespace mev::core {

enum class ThreatModel : std::uint8_t {
  /// Complete knowledge: training data, features, model architecture and
  /// parameters. JSMA runs directly against the target.
  kWhiteBox = 0,
  /// No knowledge of training data or model; knowledge of the feature
  /// space. JSMA runs against a self-trained substitute and transfers.
  kGreyBox = 1,
  /// No knowledge at all; the target is only reachable as a label oracle
  /// (Fig. 2 framework).
  kBlackBox = 2,
};

std::string to_string(ThreatModel model);

/// Fine-grained knowledge flags, for describing grey-box sub-variants
/// (e.g. the paper's binary-feature attacker knows API names but not the
/// count transformation).
struct AttackerKnowledge {
  bool training_data = false;
  bool feature_set = false;
  bool feature_transform = false;
  bool model_architecture = false;
  bool model_parameters = false;

  static AttackerKnowledge white_box() noexcept {
    return {true, true, true, true, true};
  }
  static AttackerKnowledge grey_box_exact_features() noexcept {
    return {false, true, true, false, false};
  }
  static AttackerKnowledge grey_box_api_names_only() noexcept {
    return {false, true, false, false, false};
  }
  static AttackerKnowledge black_box() noexcept { return {}; }

  ThreatModel threat_model() const noexcept {
    if (model_parameters && training_data) return ThreatModel::kWhiteBox;
    if (feature_set) return ThreatModel::kGreyBox;
    return ThreatModel::kBlackBox;
  }
};

}  // namespace mev::core
