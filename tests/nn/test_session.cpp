// InferenceSession tests: exact parity with the pre-session implementation
// (reference values captured from the seed build, printed with %a), the
// zero-allocation steady state, and thread-safety of shared networks.
#include "nn/session.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <thread>
#include <vector>

#include "attack/jsma.hpp"
#include "math/rng.hpp"
#include "nn/network.hpp"

// ---------------------------------------------------------------------------
// Allocation counting hook: replaces global operator new/delete for this
// test binary so the steady-state test can assert "no heap traffic".
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mev::nn {
namespace {

math::Matrix random_input(std::size_t rows, std::size_t cols,
                          std::uint64_t seed) {
  math::Rng rng(seed);
  math::Matrix x(rows, cols);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = static_cast<float>(rng.uniform());
  return x;
}

/// The reference network/batch the seed-build values below were captured
/// with: MLP 4-8-6-2, seed 3; input 3x4 from random_input(seed 9).
Network reference_net() {
  MlpConfig cfg;
  cfg.dims = {4, 8, 6, 2};
  cfg.seed = 3;
  return make_mlp(cfg);
}

// Values printed by the pre-refactor implementation with %a (hex floats
// are bit-exact; the refactor must reproduce them exactly, not just
// approximately).
constexpr float kRefLogits[6] = {
    0x1.a0c976p-1f, 0x1.458f6ap-1f, -0x1.32ad4p-3f,
    0x1.f8556p+0f,  0x1.973324p-1f, 0x1.4da5d4p+0f};
constexpr float kRefGrads0[12] = {
    -0x1.6ede72p-3f, 0x1.260b1p-5f,  -0x1.a4c4ecp-2f, 0x1.f7745ep-4f,
    -0x1.6317fcp-3f, -0x1.f8a30ap-6f, -0x1.d6557p-4f, 0x1.d8276ap-4f,
    -0x1.bc2464p-4f, 0x1.69e894p-6f, -0x1.fe03ecp-3f, 0x1.33c36cp-4f};
constexpr float kRefGrads1[12] = {
    0x1.6ede74p-3f, -0x1.260b1p-5f, 0x1.a4c4eep-2f,  -0x1.f77464p-4f,
    0x1.6317f8p-3f, 0x1.f8a2fep-6f, 0x1.d6556ap-4f,  -0x1.d82772p-4f,
    0x1.bc245ap-4f, -0x1.69e8acp-6f, 0x1.fe03e4p-3f, -0x1.33c378p-4f};
constexpr float kRefBackward[12] = {
    -0x1.a38b48p-4f, 0x1.c9d9aep-1f, -0x1.ee4d94p-1f, 0x1.d8c91ap+0f,
    0x1.50ea04p-2f,  0x1.756d1p-1f,  0x1.4487bap-2f,  0x1.810e1p+0f,
    0x1.c47db8p-2f,  0x1.93a9dap-1f, 0x1.1f2906p-2f,  0x1.7adb6p+0f};
constexpr float kRefWeightGrad0First6[6] = {
    0x1.841bb2p-2f, 0x1.7f5334p-5f, 0x0p+0f,
    0x1.90b2dep-1f, 0x0p+0f,        0x0p+0f};

TEST(InferenceSession, ForwardMatchesSeedBuildBitExact) {
  Network net = reference_net();
  InferenceSession session(net);
  const math::Matrix x = random_input(3, 4, 9);
  const math::Matrix& logits = session.forward(x);
  ASSERT_EQ(logits.rows(), 3u);
  ASSERT_EQ(logits.cols(), 2u);
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_EQ(logits.data()[i], kRefLogits[i]) << "logit " << i;
  // logits() is a view of the same buffer.
  EXPECT_EQ(&session.logits(), &logits);
}

TEST(InferenceSession, InputGradientsAllMatchSeedBuildBitExact) {
  Network net = reference_net();
  InferenceSession session(net);
  const math::Matrix x = random_input(3, 4, 9);
  const auto grads = session.input_gradients_all(x);
  ASSERT_EQ(grads.size(), 2u);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(grads[0].data()[i], kRefGrads0[i]) << "grads[0][" << i << "]";
    EXPECT_EQ(grads[1].data()[i], kRefGrads1[i]) << "grads[1][" << i << "]";
  }
}

TEST(InferenceSession, BackwardMatchesSeedBuildBitExact) {
  Network net = reference_net();
  InferenceSession session(net);
  session.bind_params(net);  // workspace must exist; grads start zeroed
  const math::Matrix x = random_input(3, 4, 9);
  session.zero_param_grads();
  session.forward(x, false);
  const math::Matrix& gin =
      session.backward(math::Matrix(3, 2, 1.0f), true);
  for (std::size_t i = 0; i < 12; ++i)
    EXPECT_EQ(gin.data()[i], kRefBackward[i]) << "grad_input " << i;
  const auto params = session.bind_params(net);
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_EQ(params[0].grad->data()[i], kRefWeightGrad0First6[i])
        << "weight grad " << i;
}

TEST(InferenceSession, LegacyNetworkApiMatchesSession) {
  // Network's convenience methods are documented as session-equivalent.
  Network net = reference_net();
  InferenceSession session(net);
  const math::Matrix x = random_input(5, 4, 21);
  EXPECT_EQ(net.forward(x), session.forward(x));
  EXPECT_EQ(net.predict_proba(x), session.predict_proba(x));
  const auto net_pred = net.predict(x);
  const auto ses_pred = session.predict(x);
  ASSERT_EQ(net_pred.size(), ses_pred.size());
  for (std::size_t i = 0; i < net_pred.size(); ++i)
    EXPECT_EQ(net_pred[i], ses_pred[i]);
}

TEST(InferenceSession, InputGradientsAllAgreesWithPerClassGradient) {
  MlpConfig cfg;
  cfg.dims = {6, 12, 3};
  cfg.seed = 17;
  Network net = make_mlp(cfg);
  InferenceSession session(net);
  const math::Matrix x = random_input(4, 6, 18);
  // Copy: the per-class calls below reuse the session buffers.
  const auto all_span = session.input_gradients_all(x);
  const std::vector<math::Matrix> all(all_span.begin(), all_span.end());
  ASSERT_EQ(all.size(), 3u);
  for (int c = 0; c < 3; ++c) {
    const math::Matrix& single = session.input_gradient(x, c);
    EXPECT_EQ(single, all[static_cast<std::size_t>(c)]) << "class " << c;
  }
}

TEST(InferenceSession, InputGradientSkipsParamAccumulators) {
  Network net = reference_net();
  InferenceSession session(net);
  session.zero_param_grads();
  session.input_gradient(random_input(2, 4, 33), 0);
  session.input_gradients_all(random_input(2, 4, 34));
  for (const auto& p : session.bind_params(net))
    for (std::size_t i = 0; i < p.grad->size(); ++i)
      EXPECT_EQ(p.grad->data()[i], 0.0f);
}

TEST(InferenceSession, ConstructionAndValidation) {
  Network empty;
  EXPECT_THROW(InferenceSession{empty}, std::invalid_argument);

  Network net = reference_net();
  InferenceSession session(net);
  EXPECT_THROW(session.input_gradient(random_input(1, 4, 1), 2),
               std::invalid_argument);
  EXPECT_THROW(session.input_gradient(random_input(1, 4, 1), -1),
               std::invalid_argument);
  // backward before/with a mismatched logits shape.
  session.forward(random_input(3, 4, 2));
  EXPECT_THROW(session.backward(math::Matrix(2, 2, 1.0f), true),
               std::invalid_argument);
  // bind_params only accepts the session's own network.
  Network other = reference_net();
  EXPECT_THROW(session.bind_params(other), std::invalid_argument);
}

TEST(InferenceSession, SteadyStateForwardAllocatesNothing) {
  MlpConfig cfg;
  cfg.dims = {16, 32, 8, 2};
  cfg.seed = 1;
  Network net = make_mlp(cfg);
  InferenceSession session(net, 8);
  const math::Matrix x = random_input(8, 16, 2);

  // Warm up every buffer (and OpenMP internals) at this batch shape.
  for (int i = 0; i < 3; ++i) {
    session.forward(x);
    session.predict(x);
    session.input_gradient(x, 0);
  }

  const std::size_t before = g_allocations.load();
  for (int i = 0; i < 50; ++i) session.forward(x);
  EXPECT_EQ(g_allocations.load() - before, 0u)
      << "forward allocated in steady state";

  const std::size_t before_grad = g_allocations.load();
  for (int i = 0; i < 50; ++i) {
    session.predict(x);
    session.input_gradient(x, 0);
  }
  EXPECT_EQ(g_allocations.load() - before_grad, 0u)
      << "predict/input_gradient allocated in steady state";
}

TEST(InferenceSession, SmallerBatchAfterLargerStaysAllocationFree) {
  MlpConfig cfg;
  cfg.dims = {8, 16, 2};
  cfg.seed = 2;
  Network net = make_mlp(cfg);
  InferenceSession session(net, 16);
  const math::Matrix big = random_input(16, 8, 3);
  const math::Matrix small = random_input(4, 8, 4);
  session.forward(big);
  session.forward(small);
  session.forward(big);  // capacity retained from max_batch
  const std::size_t before = g_allocations.load();
  session.forward(small);
  session.forward(big);
  EXPECT_EQ(g_allocations.load() - before, 0u);
}

TEST(InferenceSession, SharedNetworkConcurrentSessionsMatchSerial) {
  MlpConfig cfg;
  cfg.dims = {12, 24, 8, 2};
  cfg.seed = 41;
  const Network net = make_mlp(cfg);

  constexpr std::size_t kThreads = 4;
  std::vector<math::Matrix> inputs;
  for (std::size_t t = 0; t < kThreads; ++t)
    inputs.push_back(random_input(6, 12, 100 + t));

  // Serial reference, one session.
  std::vector<math::Matrix> want_logits, want_grads;
  {
    InferenceSession session(net);
    for (const auto& x : inputs) {
      want_logits.push_back(session.forward(x));
      want_grads.push_back(session.input_gradient(x, 0));
    }
  }

  // One shared (const) network, one session per thread.
  std::vector<math::Matrix> got_logits(kThreads), got_grads(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      InferenceSession session(net, 6);
      for (int repeat = 0; repeat < 25; ++repeat) {
        got_logits[t] = session.forward(inputs[t]);
        got_grads[t] = session.input_gradient(inputs[t], 0);
      }
    });
  }
  for (auto& th : threads) th.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(got_logits[t], want_logits[t]) << "thread " << t;
    EXPECT_EQ(got_grads[t], want_grads[t]) << "thread " << t;
  }
}

TEST(JsmaSessionParity, OutcomesMatchSeedBuildOn491FeatureDetector) {
  // The ISSUE acceptance criterion: identical evaded flags and
  // features_changed counts on the fixed-seed dataset, regardless of the
  // session refactor and OpenMP sharding.
  MlpConfig cfg;
  cfg.dims = {491, 64, 32, 2};
  cfg.seed = 5;
  const Network net = make_mlp(cfg);
  const math::Matrix x = random_input(32, 491, 6);

  attack::JsmaConfig jcfg;
  jcfg.theta = 0.1f;
  jcfg.gamma = 0.025f;
  const attack::Jsma jsma(jcfg);
  const attack::AttackResult res = jsma.craft(net, x);

  const char* want_evaded = "00000000001000100010000101000001";
  constexpr std::size_t want_changed[32] = {
      12, 12, 12, 12, 12, 12, 12, 12, 12, 12, 0,  12, 12, 12, 7, 12,
      12, 12, 0,  12, 12, 12, 12, 9,  12, 0,  12, 12, 12, 12, 12, 6};
  ASSERT_EQ(res.size(), 32u);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(res.evaded[i], want_evaded[i] == '1') << "sample " << i;
    EXPECT_EQ(res.features_changed[i], want_changed[i]) << "sample " << i;
  }
  EXPECT_NEAR(res.mean_l2(), 0.298181068336209, 1e-12);
}

}  // namespace
}  // namespace mev::nn
