#include "math/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace mev::math {
namespace {

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, MeanKnown) {
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Stats, MeanFloat) {
  const std::vector<float> v{2, 4};
  EXPECT_DOUBLE_EQ(mean_f(v), 3.0);
}

TEST(Stats, VarianceAndStddev) {
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(variance(v), 4.0);
  EXPECT_DOUBLE_EQ(stddev(v), 2.0);
}

TEST(Stats, VarianceOfSingletonIsZero) {
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{5.0}), 0.0);
}

TEST(Stats, Summarize) {
  const std::vector<double> v{1, 5, 3};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_EQ(s.count, 3u);
}

TEST(Stats, SummarizeEmpty) {
  const Summary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, PercentileEndpointsAndMedian) {
  const std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 20.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
}

TEST(Stats, PercentileErrors) {
  EXPECT_THROW(percentile(std::vector<double>{}, 50), std::invalid_argument);
  const std::vector<double> v{1};
  EXPECT_THROW(percentile(v, -1), std::invalid_argument);
  EXPECT_THROW(percentile(v, 101), std::invalid_argument);
}

TEST(Stats, CovarianceMatrixDiagonalIsVariance) {
  Matrix x{{1, 10}, {2, 20}, {3, 30}};
  const Matrix cov = covariance_matrix(x);
  EXPECT_NEAR(cov(0, 0), 2.0 / 3.0, 1e-5);
  EXPECT_NEAR(cov(1, 1), 200.0 / 3.0, 1e-4);
  // Perfectly correlated features: cov = sqrt(var1 * var2).
  EXPECT_NEAR(cov(0, 1), std::sqrt(cov(0, 0) * cov(1, 1)), 1e-4);
  EXPECT_NEAR(cov(0, 1), cov(1, 0), 1e-6);
}

TEST(Stats, CovarianceEmptyThrows) {
  EXPECT_THROW(covariance_matrix(Matrix(0, 3)), std::invalid_argument);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> a{1, 2, 3}, b{2, 4, 6}, c{-1, -2, -3};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-9);
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-9);
}

TEST(Stats, PearsonDegenerate) {
  const std::vector<double> a{1, 2, 3}, flat{5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(a, flat), 0.0);
  EXPECT_THROW(pearson(a, std::vector<double>{1}), std::invalid_argument);
}

}  // namespace
}  // namespace mev::math
