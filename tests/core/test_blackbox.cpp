#include "core/blackbox.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mev::core {
namespace {

/// A trivial oracle: malware iff feature 0's count exceeds a threshold.
class ThresholdOracle final : public CountOracle {
 public:
  std::vector<int> label_counts(const math::Matrix& counts) override {
    record_queries(counts.rows());
    std::vector<int> labels(counts.rows());
    for (std::size_t i = 0; i < counts.rows(); ++i)
      labels[i] = counts(i, 0) > 5.0f ? 1 : 0;
    return labels;
  }
};

math::Matrix seed_counts(std::size_t n, std::size_t d, std::uint64_t seed) {
  math::Rng rng(seed);
  math::Matrix counts(n, d);
  for (std::size_t i = 0; i < counts.size(); ++i)
    counts.data()[i] = static_cast<float>(rng.poisson(5.0));
  return counts;
}

BlackBoxConfig config(std::size_t input_dim) {
  BlackBoxConfig cfg;
  cfg.substitute_architecture.dims = {input_dim, 16, 2};
  cfg.substitute_architecture.seed = 4;
  cfg.training_per_round.epochs = 10;
  cfg.augmentation_rounds = 2;
  return cfg;
}

TEST(BlackBox, OracleCountsQueries) {
  ThresholdOracle oracle;
  oracle.label_counts(math::Matrix(7, 3));
  oracle.label_counts(math::Matrix(5, 3));
  EXPECT_EQ(oracle.queries(), 12u);
}

TEST(BlackBox, EmptySeedThrows) {
  ThresholdOracle oracle;
  EXPECT_THROW(run_blackbox_framework(oracle, math::Matrix(0, 4), config(4)),
               std::invalid_argument);
}

TEST(BlackBox, ArchitectureMismatchThrows) {
  ThresholdOracle oracle;
  EXPECT_THROW(
      run_blackbox_framework(oracle, seed_counts(10, 4, 1), config(5)),
      std::invalid_argument);
}

TEST(BlackBox, DatasetDoublesEachRound) {
  ThresholdOracle oracle;
  const auto result =
      run_blackbox_framework(oracle, seed_counts(16, 4, 2), config(4));
  ASSERT_EQ(result.rounds.size(), 3u);  // rounds 0..2
  EXPECT_EQ(result.rounds[0].dataset_rows, 16u);
  EXPECT_EQ(result.rounds[1].dataset_rows, 32u);
  EXPECT_EQ(result.rounds[2].dataset_rows, 64u);
  EXPECT_EQ(result.total_queries, 16u + 32u + 64u);
}

TEST(BlackBox, MaxRowsCapStopsAugmentation) {
  ThresholdOracle oracle;
  auto cfg = config(4);
  cfg.augmentation_rounds = 10;
  cfg.max_dataset_rows = 40;
  const auto result =
      run_blackbox_framework(oracle, seed_counts(16, 4, 3), cfg);
  EXPECT_LE(result.rounds.back().dataset_rows, 40u);
}

TEST(BlackBox, SubstituteLearnsSimpleOracle) {
  ThresholdOracle oracle;
  auto cfg = config(4);
  cfg.training_per_round.epochs = 25;
  const auto result =
      run_blackbox_framework(oracle, seed_counts(64, 4, 5), cfg);
  EXPECT_GT(result.rounds.back().oracle_agreement, 0.85);
  ASSERT_NE(result.substitute, nullptr);
  EXPECT_TRUE(result.attacker_transform.fitted());
}

TEST(BlackBox, RealizeCountsInvertsTransform) {
  features::CountTransform t;
  const math::Matrix counts = seed_counts(12, 5, 7);
  t.fit(counts);
  const math::Matrix features = t.apply(counts);
  const math::Matrix realized = realize_counts(t, features);
  EXPECT_EQ(realized, counts);
}

TEST(BlackBox, AgreementTendsUpward) {
  ThresholdOracle oracle;
  auto cfg = config(4);
  cfg.augmentation_rounds = 3;
  cfg.training_per_round.epochs = 20;
  const auto result =
      run_blackbox_framework(oracle, seed_counts(32, 4, 9), cfg);
  // The last round should agree at least as well as the first (Jacobian
  // augmentation adds informative boundary samples).
  EXPECT_GE(result.rounds.back().oracle_agreement,
            result.rounds.front().oracle_agreement - 0.05);
}

}  // namespace
}  // namespace mev::core
