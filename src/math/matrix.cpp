#include "math/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace mev::math {

namespace {

void require(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(what);
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, float value)
    : rows_(rows), cols_(cols), data_(rows * cols, value) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<float>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    require(r.size() == cols_, "Matrix: ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::row_vector(std::span<const float> v) {
  Matrix m(1, v.size());
  std::copy(v.begin(), v.end(), m.data_.begin());
  return m;
}

Matrix Matrix::col_vector(std::span<const float> v) {
  Matrix m(v.size(), 1);
  std::copy(v.begin(), v.end(), m.data_.begin());
  return m;
}

float& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

float Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

void Matrix::set_row(std::size_t r, std::span<const float> src) {
  require(src.size() == cols_, "Matrix::set_row: length mismatch");
  if (r >= rows_) throw std::out_of_range("Matrix::set_row");
  std::copy(src.begin(), src.end(), data_.begin() + r * cols_);
}

void Matrix::append_row(std::span<const float> src) {
  if (rows_ == 0 && cols_ == 0) cols_ = src.size();
  require(src.size() == cols_, "Matrix::append_row: length mismatch");
  data_.insert(data_.end(), src.begin(), src.end());
  ++rows_;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  require(same_shape(rhs), "Matrix::operator+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  require(same_shape(rhs), "Matrix::operator-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(float scalar) noexcept {
  for (auto& x : data_) x *= scalar;
  return *this;
}

Matrix& Matrix::hadamard(const Matrix& rhs) {
  require(same_shape(rhs), "Matrix::hadamard: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= rhs.data_[i];
  return *this;
}

Matrix& Matrix::apply(const std::function<float(float)>& f) {
  for (auto& x : data_) x = f(x);
  return *this;
}

Matrix& Matrix::clamp(float lo, float hi) noexcept {
  for (auto& x : data_) x = std::clamp(x, lo, hi);
  return *this;
}

void Matrix::fill(float value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  data_.resize(rows * cols);
  rows_ = rows;
  cols_ = cols;
}

void Matrix::reserve(std::size_t rows, std::size_t cols) {
  data_.reserve(rows * cols);
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::slice_rows(std::size_t begin, std::size_t end) const {
  if (begin > end || end > rows_) throw std::out_of_range("slice_rows");
  Matrix out(end - begin, cols_);
  std::copy(data_.begin() + begin * cols_, data_.begin() + end * cols_,
            out.data_.begin());
  return out;
}

Matrix Matrix::gather_rows(std::span<const std::size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= rows_) throw std::out_of_range("gather_rows");
    out.set_row(i, row(indices[i]));
  }
  return out;
}

Matrix Matrix::gather_cols(std::span<const std::size_t> indices) const {
  Matrix out(rows_, indices.size());
  for (std::size_t c = 0; c < indices.size(); ++c)
    if (indices[c] >= cols_) throw std::out_of_range("gather_cols");
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < indices.size(); ++c)
      out(r, c) = (*this)(r, indices[c]);
  return out;
}

double Matrix::sum() const noexcept {
  double s = 0.0;
  for (float x : data_) s += x;
  return s;
}

double Matrix::frobenius_norm() const noexcept {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return std::sqrt(s);
}

float Matrix::max_abs() const noexcept {
  float m = 0.0f;
  for (float x : data_) m = std::max(m, std::abs(x));
  return m;
}

std::string Matrix::to_string(std::size_t max_rows) const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " [";
  const std::size_t shown = std::min(rows_, max_rows);
  for (std::size_t r = 0; r < shown; ++r) {
    os << (r == 0 ? "[" : " [");
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c) os << ", ";
      os << (*this)(r, c);
    }
    os << "]";
    if (r + 1 < shown) os << "\n";
  }
  if (shown < rows_) os << "\n ...";
  os << "]";
  return os.str();
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(Matrix lhs, float scalar) { return lhs *= scalar; }
Matrix operator*(float scalar, Matrix rhs) { return rhs *= scalar; }

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_into(a, b, c);
  return c;
}

Matrix matmul_at_b(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_at_b_into(a, b, c);
  return c;
}

Matrix matmul_a_bt(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_a_bt_into(a, b, c);
  return c;
}

void matmul_into(const Matrix& a, const Matrix& b, Matrix& c) {
  require(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  c.resize(m, n);
  c.fill(0.0f);
  // i-k-j loop order: the inner loop streams both B and C rows, which is
  // cache-friendly for row-major storage; OpenMP parallelizes over rows.
#pragma omp parallel for schedule(static) if (m * n * k > 1u << 16)
  for (std::size_t i = 0; i < m; ++i) {
    float* ci = c.data() + i * n;
    const float* ai = a.data() + i * k;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = ai[kk];
      if (aik == 0.0f) continue;  // feature vectors are sparse
      const float* bk = b.data() + kk * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
    }
  }
}

void matmul_at_b_into(const Matrix& a, const Matrix& b, Matrix& c,
                      bool accumulate) {
  require(a.rows() == b.rows(), "matmul_at_b: row mismatch");
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  if (accumulate) {
    require(c.rows() == m && c.cols() == n,
            "matmul_at_b_into: accumulate shape mismatch");
  } else {
    c.resize(m, n);
    c.fill(0.0f);
  }
#pragma omp parallel for schedule(static) if (m * n * k > 1u << 16)
  for (std::size_t i = 0; i < m; ++i) {
    float* ci = c.data() + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aki = a(kk, i);
      if (aki == 0.0f) continue;
      const float* bk = b.data() + kk * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += aki * bk[j];
    }
  }
}

void matmul_a_bt_into(const Matrix& a, const Matrix& b, Matrix& c) {
  require(a.cols() == b.cols(), "matmul_a_bt: col mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  c.resize(m, n);
#pragma omp parallel for schedule(static) if (m * n * k > 1u << 16)
  for (std::size_t i = 0; i < m; ++i) {
    const float* ai = a.data() + i * k;
    float* ci = c.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* bj = b.data() + j * k;
      float s = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) s += ai[kk] * bj[kk];
      ci[j] = s;
    }
  }
}

void gather_rows_into(const Matrix& src, std::span<const std::size_t> indices,
                      Matrix& out) {
  out.resize(indices.size(), src.cols());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= src.rows()) throw std::out_of_range("gather_rows_into");
    const auto row = src.row(indices[i]);
    std::copy(row.begin(), row.end(), out.data() + i * out.cols());
  }
}

void add_column_sums(const Matrix& m, Matrix& acc) {
  require(acc.rows() == 1 && acc.cols() == m.cols(),
          "add_column_sums: shape mismatch");
  float* s = acc.data();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.data() + r * m.cols();
    for (std::size_t c = 0; c < m.cols(); ++c) s[c] += row[c];
  }
}

std::vector<float> matvec(const Matrix& a, std::span<const float> x) {
  require(a.cols() == x.size(), "matvec: dimension mismatch");
  std::vector<float> y(a.rows(), 0.0f);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* ai = a.data() + i * a.cols();
    float s = 0.0f;
    for (std::size_t j = 0; j < a.cols(); ++j) s += ai[j] * x[j];
    y[i] = s;
  }
  return y;
}

void add_row_broadcast(Matrix& m, std::span<const float> bias) {
  require(bias.size() == m.cols(), "add_row_broadcast: length mismatch");
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float* row = m.data() + r * m.cols();
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += bias[c];
  }
}

std::vector<float> column_sums(const Matrix& m) {
  std::vector<float> s(m.cols(), 0.0f);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.data() + r * m.cols();
    for (std::size_t c = 0; c < m.cols(); ++c) s[c] += row[c];
  }
  return s;
}

std::vector<float> column_means(const Matrix& m) {
  require(m.rows() > 0, "column_means: empty matrix");
  auto s = column_sums(m);
  const float inv = 1.0f / static_cast<float>(m.rows());
  for (auto& x : s) x *= inv;
  return s;
}

}  // namespace mev::math
