// ROC curve and AUC from malware-confidence scores — threshold-free
// detector evaluation, complementing the fixed-threshold Table VI metrics.
#pragma once

#include <vector>

namespace mev::eval {

struct RocPoint {
  double threshold = 0.0;
  double tpr = 0.0;
  double fpr = 0.0;
};

/// ROC points sorted by descending threshold (one per distinct score),
/// with the (0,0) and (1,1) endpoints included. Labels: 0 clean /
/// 1 malware; scores: higher = more malware-like.
std::vector<RocPoint> roc_curve(const std::vector<int>& labels,
                                const std::vector<double>& scores);

/// Area under the ROC curve by trapezoidal rule. Requires both classes
/// present; throws std::invalid_argument otherwise.
double auc(const std::vector<int>& labels, const std::vector<double>& scores);

/// The score threshold maximizing Youden's J = TPR - FPR.
double best_youden_threshold(const std::vector<int>& labels,
                             const std::vector<double>& scores);

}  // namespace mev::eval
