// SloTracker: multi-window burn-rate tracking for the serving layer's two
// objectives, built on obs/window.hpp and always compiled (the SLO math
// works with MEV_ENABLE_OBS=OFF; only the gauge mirrors go inert).
//
//   availability  fraction of requests resolved without a rejection
//   latency       fraction of *completed* requests under the threshold
//
// Burn rate (the SRE-workbook definition): the rate at which the error
// budget is being spent, as a multiple of the sustainable rate —
//
//   burn(window) = (bad/total over window) / (1 - objective)
//
// 1.0 burns exactly the budget over the SLO period; a 99.9% objective
// with 1% of requests failing burns at 10x. Two windows are reported per
// objective: fast (~5 min, catches an active incident in minutes) and
// slow (~1 h, filters blips). One bucket ring answers both — the fast
// window is a sub-span query over the same slots. A fast burn above
// `fast_burn_alert` (default 14.4 = the conventional 2%-budget-in-1h
// page) raises an ADVISORY flag: /readyz appends it to the reason text
// but never flips 503 on it — shedding is the overload controller's job,
// and an SLO page must not amplify an incident by draining traffic.
//
// Error budget remaining is lifetime-based: 1 - (bad/total)/(1-objective)
// over all requests since start, 1.0 when idle, negative when overspent.
//
// All timestamps come from the caller's runtime::Clock, so a FakeClock
// test pins every burn rate exactly (tests/obs/test_slo.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "obs/window.hpp"

namespace mev::obs {

struct SloConfig {
  /// Objectives as target good-fractions.
  double availability_objective = 0.999;
  double latency_objective = 0.99;
  /// A completed request slower than this counts against the latency
  /// objective.
  std::uint64_t latency_threshold_us = 100'000;
  /// Shared bucket ring: 240 x 15 s = 1 h of history. The slow window is
  /// the full span; the fast window queries a 5-minute sub-span.
  std::uint64_t bucket_us = 15'000'000;
  std::size_t buckets = 240;
  std::uint64_t fast_window_us = 300'000'000;    // 5 min
  std::uint64_t slow_window_us = 3'600'000'000;  // 1 h
  /// Fast-burn advisory threshold (14.4 = 2% of a 30-day budget in 1 h).
  double fast_burn_alert = 14.4;
};

class SloTracker {
 public:
  explicit SloTracker(SloConfig config = {});

  /// One resolved request. `ok` = resolved without rejection; latency_us
  /// is consulted only when ok (rejections do not skew the latency
  /// objective — they already burned availability).
  void record(std::uint64_t now_us, bool ok,
              std::uint64_t latency_us) noexcept;

  struct Objective {
    double objective = 0.0;
    std::uint64_t fast_total = 0, fast_bad = 0;
    std::uint64_t slow_total = 0, slow_bad = 0;
    double fast_burn = 0.0, slow_burn = 0.0;
    std::uint64_t lifetime_total = 0, lifetime_bad = 0;
    double budget_remaining = 1.0;
  };
  struct Snapshot {
    Objective availability;
    Objective latency;
    /// True when either objective's fast burn exceeds fast_burn_alert.
    bool fast_burn_alert = false;
  };

  Snapshot snapshot(std::uint64_t now_us) const noexcept;

  /// /sloz body: {"availability":{...},"latency":{...},
  /// "fast_burn_alert":bool,...} with burn rates, windowed counts, and
  /// budget remaining per objective.
  std::string to_json(std::uint64_t now_us) const;

  /// Registers the mev.slo.* gauge mirrors (fast/slow burn and budget
  /// remaining per objective, labeled {objective=...}); inert OBS-off.
  void register_gauges(MetricsRegistry* registry);
  /// Pushes the current snapshot into the registered gauges (no-op when
  /// register_gauges was never called, or OBS-off).
  void refresh_gauges(std::uint64_t now_us) noexcept;

  const SloConfig& config() const noexcept { return config_; }

 private:
  struct WindowedObjective {
    explicit WindowedObjective(const WindowConfig& w)
        : total(w), bad(w) {}
    SlidingCounter total;
    SlidingCounter bad;
    std::atomic<std::uint64_t> lifetime_total{0};
    std::atomic<std::uint64_t> lifetime_bad{0};
  };

  Objective read(const WindowedObjective& w, double objective,
                 std::uint64_t now_us) const noexcept;

  SloConfig config_;
  WindowedObjective availability_;
  WindowedObjective latency_;

  struct ObjectiveGauges {
    Gauge fast_burn, slow_burn, budget_remaining;
  };
  ObjectiveGauges availability_gauges_;
  ObjectiveGauges latency_gauges_;
};

}  // namespace mev::obs
