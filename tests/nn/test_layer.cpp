#include "nn/layer.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mev::nn {
namespace {

TEST(DenseLayer, ForwardKnownValues) {
  // y = x * W + b with identity activation.
  math::Matrix w{{1, 0}, {0, 2}};
  math::Matrix b{{10, 20}};
  DenseLayer layer(std::move(w), std::move(b), Activation::kIdentity);
  const math::Matrix x{{3, 4}};
  const math::Matrix y = layer.forward(x, false);
  EXPECT_EQ(y(0, 0), 13.0f);
  EXPECT_EQ(y(0, 1), 28.0f);
}

TEST(DenseLayer, ForwardAppliesActivation) {
  math::Matrix w{{1}, {1}};
  math::Matrix b{{-10}};
  DenseLayer layer(std::move(w), std::move(b), Activation::kRelu);
  const math::Matrix x{{1, 2}};
  EXPECT_EQ(layer.forward(x, false)(0, 0), 0.0f);
}

TEST(DenseLayer, DimensionMismatchThrows) {
  math::Rng rng(1);
  DenseLayer layer(3, 2, Activation::kRelu, rng);
  EXPECT_THROW(layer.forward(math::Matrix(1, 4), false),
               std::invalid_argument);
}

TEST(DenseLayer, BiasShapeMismatchThrows) {
  EXPECT_THROW(DenseLayer(math::Matrix(2, 3), math::Matrix(1, 2),
                          Activation::kIdentity),
               std::invalid_argument);
}

TEST(DenseLayer, ZeroDimensionThrows) {
  math::Rng rng(1);
  EXPECT_THROW(DenseLayer(0, 2, Activation::kRelu, rng),
               std::invalid_argument);
}

TEST(DenseLayer, ParameterGradientsMatchFiniteDifference) {
  math::Rng rng(3);
  DenseLayer layer(4, 3, Activation::kTanh, rng);
  math::Matrix x(2, 4);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = static_cast<float>(rng.normal());

  // Loss = sum of outputs; upstream gradient of ones.
  const auto loss = [&](DenseLayer& l) {
    return l.forward(x, false).sum();
  };
  layer.zero_grad();
  layer.forward(x, false);
  layer.backward(math::Matrix(2, 3, 1.0f));
  auto params = layer.params();
  ASSERT_EQ(params.size(), 2u);

  const float eps = 1e-2f;
  for (const auto& p : params) {
    for (std::size_t i = 0; i < std::min<std::size_t>(p.value->size(), 6);
         ++i) {
      const float original = p.value->data()[i];
      p.value->data()[i] = original + eps;
      const double up = loss(layer);
      p.value->data()[i] = original - eps;
      const double down = loss(layer);
      p.value->data()[i] = original;
      const double fd = (up - down) / (2 * eps);
      EXPECT_NEAR(p.grad->data()[i], fd, 2e-2);
    }
  }
}

TEST(DenseLayer, InputGradientMatchesFiniteDifference) {
  math::Rng rng(4);
  DenseLayer layer(3, 2, Activation::kSigmoid, rng);
  math::Matrix x(1, 3);
  for (std::size_t i = 0; i < 3; ++i)
    x.data()[i] = static_cast<float>(rng.normal());
  layer.forward(x, false);
  const math::Matrix gin = layer.backward(math::Matrix(1, 2, 1.0f));

  const float eps = 1e-2f;
  for (std::size_t j = 0; j < 3; ++j) {
    math::Matrix xp = x, xm = x;
    xp(0, j) += eps;
    xm(0, j) -= eps;
    const double fd =
        (layer.forward(xp, false).sum() - layer.forward(xm, false).sum()) /
        (2 * eps);
    EXPECT_NEAR(gin(0, j), fd, 2e-2);
  }
}

TEST(DenseLayer, GradientsAccumulateAcrossBackwards) {
  math::Rng rng(5);
  DenseLayer layer(2, 2, Activation::kIdentity, rng);
  const math::Matrix x{{1, 1}};
  layer.zero_grad();
  layer.forward(x, false);
  layer.backward(math::Matrix(1, 2, 1.0f));
  const float once = layer.params()[0].grad->data()[0];
  layer.backward(math::Matrix(1, 2, 1.0f));
  EXPECT_NEAR(layer.params()[0].grad->data()[0], 2 * once, 1e-5);
  layer.zero_grad();
  EXPECT_EQ(layer.params()[0].grad->data()[0], 0.0f);
}

TEST(DenseLayer, CloneIsDeepCopy) {
  math::Rng rng(6);
  DenseLayer layer(2, 2, Activation::kRelu, rng);
  auto clone = layer.clone();
  auto* dense = dynamic_cast<DenseLayer*>(clone.get());
  ASSERT_NE(dense, nullptr);
  EXPECT_EQ(dense->weights(), layer.weights());
  dense->mutable_weights()(0, 0) += 1.0f;
  EXPECT_NE(dense->weights(), layer.weights());
}

TEST(DropoutLayer, InferenceModePassesThrough) {
  DropoutLayer drop(3, 0.5f, 1);
  const math::Matrix x{{1, 2, 3}};
  EXPECT_EQ(drop.forward(x, false), x);
}

TEST(DropoutLayer, TrainingZeroesRoughlyRateFraction) {
  DropoutLayer drop(1000, 0.4f, 2);
  const math::Matrix x(1, 1000, 1.0f);
  const math::Matrix y = drop.forward(x, true);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.size(); ++i)
    if (y.data()[i] == 0.0f) ++zeros;
  EXPECT_NEAR(static_cast<double>(zeros) / 1000.0, 0.4, 0.06);
  // Kept units are scaled by 1/(1-rate).
  for (std::size_t i = 0; i < y.size(); ++i)
    if (y.data()[i] != 0.0f) EXPECT_NEAR(y.data()[i], 1.0f / 0.6f, 1e-5);
}

TEST(DropoutLayer, BackwardUsesSameMask) {
  DropoutLayer drop(100, 0.5f, 3);
  const math::Matrix x(1, 100, 1.0f);
  const math::Matrix y = drop.forward(x, true);
  const math::Matrix g = drop.backward(math::Matrix(1, 100, 1.0f));
  for (std::size_t i = 0; i < 100; ++i) {
    if (y.data()[i] == 0.0f)
      EXPECT_EQ(g.data()[i], 0.0f);
    else
      EXPECT_GT(g.data()[i], 0.0f);
  }
}

TEST(DropoutLayer, InvalidRateThrows) {
  EXPECT_THROW(DropoutLayer(3, 1.0f, 1), std::invalid_argument);
  EXPECT_THROW(DropoutLayer(3, -0.1f, 1), std::invalid_argument);
}

}  // namespace
}  // namespace mev::nn
