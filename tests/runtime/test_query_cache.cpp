#include "runtime/query_cache.hpp"

#include <gtest/gtest.h>

#include "runtime/oracle_error.hpp"

namespace mev::runtime {
namespace {

class CountingOracle final : public CountOracle {
 public:
  std::vector<int> label_counts(const math::Matrix& counts) override {
    record_queries(counts.rows());
    ++calls;
    std::vector<int> labels(counts.rows());
    for (std::size_t i = 0; i < counts.rows(); ++i)
      labels[i] = counts(i, 0) > 5.0f ? 1 : 0;
    return labels;
  }
  std::size_t calls = 0;
};

TEST(QueryCache, LookupMissThenHit) {
  QueryCache cache;
  const std::vector<float> row{1, 2, 3};
  EXPECT_FALSE(cache.lookup(row).has_value());
  cache.insert(row, 1);
  ASSERT_TRUE(cache.lookup(row).has_value());
  EXPECT_EQ(*cache.lookup(row), 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(QueryCache, InsertOverwrites) {
  QueryCache cache;
  const std::vector<float> row{1, 2};
  cache.insert(row, 0);
  cache.insert(row, 1);
  EXPECT_EQ(*cache.lookup(row), 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(QueryCache, ExportImportRoundTripPreservesOrder) {
  QueryCache cache;
  cache.insert(std::vector<float>{3, 3}, 1);
  cache.insert(std::vector<float>{1, 1}, 0);
  cache.insert(std::vector<float>{2, 2}, 1);
  math::Matrix rows;
  std::vector<int> labels;
  cache.export_entries(rows, labels);
  ASSERT_EQ(rows.rows(), 3u);
  EXPECT_EQ(rows(0, 0), 3.0f);  // insertion order
  EXPECT_EQ(rows(1, 0), 1.0f);
  EXPECT_EQ(rows(2, 0), 2.0f);
  EXPECT_EQ(labels, (std::vector<int>{1, 0, 1}));

  QueryCache restored;
  restored.import_entries(rows, labels);
  EXPECT_EQ(restored.size(), 3u);
  EXPECT_EQ(*restored.lookup(std::vector<float>{1, 1}), 0);
}

TEST(QueryCache, ImportRejectsMismatchedSizes) {
  QueryCache cache;
  EXPECT_THROW(cache.import_entries(math::Matrix(2, 2), {1}),
               std::invalid_argument);
}

TEST(CachingOracle, RepeatRowsAreAnsweredFromCache) {
  CountingOracle inner;
  CachingOracle oracle(inner);
  math::Matrix batch(3, 2);
  batch(0, 0) = 9;  // malware
  batch(1, 0) = 1;  // clean
  batch(2, 0) = 9;  // duplicate of row 0 within the batch
  const auto first = oracle.label_counts(batch);
  EXPECT_EQ(first, (std::vector<int>{1, 0, 1}));
  EXPECT_EQ(inner.queries(), 2u);  // deduped within the batch
  EXPECT_EQ(oracle.hits(), 1u);
  EXPECT_EQ(oracle.misses(), 2u);

  const auto second = oracle.label_counts(batch);
  EXPECT_EQ(second, first);
  EXPECT_EQ(inner.queries(), 2u);  // fully served from cache
  EXPECT_EQ(inner.calls, 1u);
  EXPECT_EQ(oracle.hits(), 4u);
  EXPECT_EQ(oracle.queries(), 2u);  // counts only real submissions
}

TEST(CachingOracle, MatchesUncachedLabelsExactly) {
  CountingOracle plain, wrapped_inner;
  CachingOracle cached(wrapped_inner);
  math::Matrix batch(16, 3);
  for (std::size_t i = 0; i < batch.size(); ++i)
    batch.data()[i] = static_cast<float>(i % 7);
  EXPECT_EQ(cached.label_counts(batch), plain.label_counts(batch));
}

TEST(CachingOracle, PropagatesInnerSizeMismatch) {
  class ShortOracle final : public CountOracle {
   public:
    std::vector<int> label_counts(const math::Matrix& counts) override {
      return std::vector<int>(counts.rows() - 1, 0);
    }
  };
  ShortOracle inner;
  CachingOracle oracle(inner);
  EXPECT_THROW(oracle.label_counts(math::Matrix(4, 2)),
               GarbledResponseError);
}

}  // namespace
}  // namespace mev::runtime
