#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace mev::nn {
namespace {

TEST(Loss, SoftmaxRowsSumToOne) {
  const math::Matrix logits{{1, 2, 3}, {-1, 0, 1}};
  const math::Matrix p = softmax_rows(logits);
  for (std::size_t r = 0; r < 2; ++r) {
    double s = 0;
    for (std::size_t c = 0; c < 3; ++c) s += p(r, c);
    EXPECT_NEAR(s, 1.0, 1e-6);
  }
}

TEST(Loss, CrossEntropyUniformLogits) {
  const math::Matrix logits{{0, 0}};
  const auto result = softmax_cross_entropy(logits, {0});
  EXPECT_NEAR(result.loss, std::log(2.0), 1e-6);
  // grad = (p - onehot)/n: p = 0.5 each.
  EXPECT_NEAR(result.grad_logits(0, 0), -0.5f, 1e-5);
  EXPECT_NEAR(result.grad_logits(0, 1), 0.5f, 1e-5);
}

TEST(Loss, CrossEntropyConfidentCorrectIsSmall) {
  const math::Matrix logits{{10, -10}};
  const auto result = softmax_cross_entropy(logits, {0});
  EXPECT_LT(result.loss, 1e-4);
}

TEST(Loss, CrossEntropyLabelErrors) {
  const math::Matrix logits{{0, 0}};
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 1}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {2}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {-1}), std::invalid_argument);
}

TEST(Loss, CrossEntropyGradMatchesFiniteDifference) {
  math::Matrix logits{{0.3f, -0.7f, 1.1f}, {0.2f, 0.9f, -0.4f}};
  const std::vector<int> labels{2, 0};
  const auto result = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      math::Matrix lp = logits, lm = logits;
      lp(i, c) += eps;
      lm(i, c) -= eps;
      const double fd = (softmax_cross_entropy(lp, labels).loss -
                         softmax_cross_entropy(lm, labels).loss) /
                        (2 * eps);
      EXPECT_NEAR(result.grad_logits(i, c), fd, 1e-3);
    }
  }
}

TEST(Loss, TemperatureSoftensGradient) {
  const math::Matrix logits{{2.0f, -2.0f}};
  const auto sharp = softmax_cross_entropy(logits, {1}, 1.0f);
  const auto soft = softmax_cross_entropy(logits, {1}, 50.0f);
  EXPECT_GT(std::abs(sharp.grad_logits(0, 0)),
            std::abs(soft.grad_logits(0, 0)));
}

TEST(Loss, TemperatureGradMatchesFiniteDifference) {
  math::Matrix logits{{0.5f, -0.2f}};
  const std::vector<int> labels{0};
  const float T = 10.0f;
  const auto result = softmax_cross_entropy(logits, labels, T);
  const float eps = 1e-3f;
  for (std::size_t c = 0; c < 2; ++c) {
    math::Matrix lp = logits, lm = logits;
    lp(0, c) += eps;
    lm(0, c) -= eps;
    const double fd = (softmax_cross_entropy(lp, labels, T).loss -
                       softmax_cross_entropy(lm, labels, T).loss) /
                      (2 * eps);
    EXPECT_NEAR(result.grad_logits(0, c), fd, 1e-4);
  }
}

TEST(Loss, SoftLabelMatchesHardLabelWhenOneHot) {
  const math::Matrix logits{{0.3f, 0.9f}};
  const math::Matrix targets{{0.0f, 1.0f}};
  const auto soft = soft_label_cross_entropy(logits, targets);
  const auto hard = softmax_cross_entropy(logits, {1});
  EXPECT_NEAR(soft.loss, hard.loss, 1e-6);
  for (std::size_t c = 0; c < 2; ++c)
    EXPECT_NEAR(soft.grad_logits(0, c), hard.grad_logits(0, c), 1e-6);
}

TEST(Loss, SoftLabelGradMatchesFiniteDifference) {
  math::Matrix logits{{0.1f, -0.3f, 0.8f}};
  const math::Matrix targets{{0.2f, 0.5f, 0.3f}};
  const auto result = soft_label_cross_entropy(logits, targets);
  const float eps = 1e-3f;
  for (std::size_t c = 0; c < 3; ++c) {
    math::Matrix lp = logits, lm = logits;
    lp(0, c) += eps;
    lm(0, c) -= eps;
    const double fd = (soft_label_cross_entropy(lp, targets).loss -
                       soft_label_cross_entropy(lm, targets).loss) /
                      (2 * eps);
    EXPECT_NEAR(result.grad_logits(0, c), fd, 1e-3);
  }
}

TEST(Loss, SoftLabelShapeMismatchThrows) {
  EXPECT_THROW(
      soft_label_cross_entropy(math::Matrix(1, 2), math::Matrix(1, 3)),
      std::invalid_argument);
}

TEST(Loss, MseKnownValue) {
  const math::Matrix pred{{1, 2}};
  const math::Matrix target{{0, 0}};
  const auto result = mean_squared_error(pred, target);
  EXPECT_NEAR(result.loss, (1.0 + 4.0) / 2.0, 1e-6);
  EXPECT_NEAR(result.grad_logits(0, 1), 2.0f * 2.0f / 2.0f, 1e-5);
}

TEST(Loss, MseErrors) {
  EXPECT_THROW(mean_squared_error(math::Matrix(1, 2), math::Matrix(2, 2)),
               std::invalid_argument);
  EXPECT_THROW(mean_squared_error(math::Matrix(), math::Matrix()),
               std::invalid_argument);
}

}  // namespace
}  // namespace mev::nn
