#include "eval/metrics.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace mev::eval {

namespace {
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

double ratio(std::size_t num, std::size_t den) noexcept {
  return den == 0 ? kNan
                  : static_cast<double>(num) / static_cast<double>(den);
}
}  // namespace

double ConfusionMatrix::tpr() const noexcept {
  return ratio(true_positive, positives());
}
double ConfusionMatrix::tnr() const noexcept {
  return ratio(true_negative, negatives());
}
double ConfusionMatrix::fpr() const noexcept {
  return ratio(false_positive, negatives());
}
double ConfusionMatrix::fnr() const noexcept {
  return ratio(false_negative, positives());
}
double ConfusionMatrix::accuracy() const noexcept {
  return ratio(true_positive + true_negative, total());
}
double ConfusionMatrix::precision() const noexcept {
  return ratio(true_positive, true_positive + false_positive);
}
double ConfusionMatrix::f1() const noexcept {
  const double p = precision(), r = tpr();
  if (std::isnan(p) || std::isnan(r) || p + r == 0.0) return kNan;
  return 2.0 * p * r / (p + r);
}

std::string ConfusionMatrix::to_string() const {
  std::ostringstream os;
  os << "TP=" << true_positive << " TN=" << true_negative
     << " FP=" << false_positive << " FN=" << false_negative
     << " TPR=" << tpr() << " TNR=" << tnr();
  return os.str();
}

ConfusionMatrix confusion(const std::vector<int>& labels,
                          const std::vector<int>& predictions) {
  if (labels.size() != predictions.size())
    throw std::invalid_argument("confusion: size mismatch");
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const bool actual_malware = labels[i] == 1;
    const bool predicted_malware = predictions[i] == 1;
    if (actual_malware && predicted_malware) ++cm.true_positive;
    else if (actual_malware && !predicted_malware) ++cm.false_negative;
    else if (!actual_malware && predicted_malware) ++cm.false_positive;
    else ++cm.true_negative;
  }
  return cm;
}

double detection_rate(const std::vector<int>& predictions) {
  if (predictions.empty()) return kNan;
  std::size_t detected = 0;
  for (int p : predictions)
    if (p == 1) ++detected;
  return static_cast<double>(detected) /
         static_cast<double>(predictions.size());
}

double evasion_rate(const std::vector<int>& predictions) {
  return 1.0 - detection_rate(predictions);
}

}  // namespace mev::eval
