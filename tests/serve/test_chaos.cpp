// Chaos harness: the ModelFaultInjector itself, and the service's core
// robustness invariant under every built-in fault profile — each
// submitted request completes exactly once with verdicts or a typed
// rejection, worker threads survive throwing models, and the service
// accepts work again after the fault clears.
//
// Seeds come from MEV_CHAOS_SEED when set (the CI chaos job sweeps
// several), so a failing seed reproduces locally with
//   MEV_CHAOS_SEED=<n> ./test_serve --gtest_filter='Chaos*'
#include "serve/chaos.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "data/api_vocab.hpp"
#include "features/transform.hpp"
#include "math/rng.hpp"
#include "runtime/clock.hpp"
#include "serve/scoring_service.hpp"

namespace mev::serve {
namespace {

constexpr std::size_t kDim = data::kNumApiFeatures;

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("MEV_CHAOS_SEED"))
    return std::strtoull(env, nullptr, 10);
  return 0x5EEDULL;
}

math::Matrix random_counts(std::size_t rows, std::uint64_t seed) {
  math::Rng rng(seed);
  math::Matrix m(rows, kDim);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.poisson(3.0));
  return m;
}

features::FeaturePipeline make_pipeline(std::uint64_t seed) {
  auto transform = std::make_unique<features::CountTransform>();
  transform->fit(random_counts(64, seed));
  return features::FeaturePipeline(data::ApiVocab::instance(),
                                   std::move(transform));
}

std::shared_ptr<nn::Network> make_network(std::uint64_t seed) {
  nn::MlpConfig cfg;
  cfg.dims = {kDim, 16, 2};
  cfg.seed = seed;
  return std::make_shared<nn::Network>(nn::make_mlp(cfg));
}

struct Fixture {
  features::FeaturePipeline pipeline = make_pipeline(7);
  std::shared_ptr<nn::Network> network = make_network(11);

  ScoringService make_service(ServiceConfig config) {
    return ScoringService(pipeline, network, config);
  }
};

// ---------------------------------------------------------------------------
// Injector unit tests (FakeClock, no service).

TEST(ModelFaultInjector, NoneProfileIsTransparent) {
  runtime::FakeClock clock;
  ModelFaultInjector injector(ModelFaultProfile::none(), &clock);
  std::vector<core::Verdict> verdicts(3);
  for (int i = 0; i < 50; ++i) {
    injector.pre_scan();
    EXPECT_NO_THROW(injector.post_scan(verdicts));
  }
  EXPECT_EQ(verdicts.size(), 3u);
  EXPECT_EQ(injector.injected().faults(), 0u);
  EXPECT_EQ(injector.injected().batches, 50u);
  EXPECT_EQ(clock.now_ms(), 0u);  // no injected latency
}

TEST(ModelFaultInjector, RatesAreSeededAndRoughlyHonored) {
  runtime::FakeClock clock;
  ModelFaultProfile profile = ModelFaultProfile::throwing();
  profile.seed = chaos_seed();
  ModelFaultInjector injector(profile, &clock);
  std::size_t threw = 0;
  std::vector<core::Verdict> verdicts(2);
  for (int i = 0; i < 400; ++i) {
    injector.pre_scan();
    try {
      injector.post_scan(verdicts);
    } catch (const std::runtime_error& e) {
      ++threw;
      EXPECT_NE(std::string(e.what()).find(profile.name), std::string::npos);
    }
  }
  EXPECT_EQ(injector.injected().throws, threw);
  // 30% nominal; a seeded binomial(400, 0.3) stays comfortably in range.
  EXPECT_GT(threw, 60u);
  EXPECT_LT(threw, 200u);
}

TEST(ModelFaultInjector, StallBurstSleepsThenSubsides) {
  runtime::FakeClock clock;
  ModelFaultInjector injector(ModelFaultProfile::stalling(), &clock);
  const std::uint64_t per_stall = injector.profile().stall_ms;
  ASSERT_GT(per_stall, 0u);
  injector.pre_scan();
  EXPECT_EQ(clock.now_ms(), per_stall);
  injector.pre_scan();
  EXPECT_EQ(clock.now_ms(), 2 * per_stall);
  injector.pre_scan();  // burst spent: no further latency
  EXPECT_EQ(clock.now_ms(), 2 * per_stall);
  EXPECT_EQ(injector.injected().stalled, 2u);
}

// ---------------------------------------------------------------------------
// Deterministic service-level fault handling (manual pump + FakeClock).

TEST(Chaos, ThrowingModelFailsBatchTypedAndServiceRecovers) {
  Fixture f;
  runtime::FakeClock clock;
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.clock = &clock;
  auto service = f.make_service(cfg);

  ModelFaultProfile always_throws;
  always_throws.name = "always-throws";
  always_throws.throw_rate = 1.0;
  always_throws.seed = chaos_seed();
  service.set_model_fault(always_throws);

  auto a = service.submit(random_counts(2, 1));
  auto b = service.submit(random_counts(3, 2));
  service.pump(/*force=*/true);
  EXPECT_EQ(a.get().rejected, RejectReason::kInternalError);
  EXPECT_EQ(b.get().rejected, RejectReason::kInternalError);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.batch_failures, 1u);  // one batch, both requests in it
  EXPECT_EQ(stats.rejected_internal, 2u);
  EXPECT_EQ(stats.completed_rows, 0u);

  // Clearing the fault is a hot swap: the very next batch scores clean.
  service.clear_model_fault();
  auto c = service.submit(random_counts(2, 3));
  service.pump(/*force=*/true);
  EXPECT_TRUE(c.get().ok());
  EXPECT_EQ(service.stats().completed_rows, 2u);
}

TEST(Chaos, GarbledVerdictCountFailsBatchInsteadOfMisattributing) {
  Fixture f;
  runtime::FakeClock clock;
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.clock = &clock;
  auto service = f.make_service(cfg);

  ModelFaultProfile garble;
  garble.name = "always-garbles";
  garble.garble_rate = 1.0;
  garble.seed = chaos_seed();
  service.set_model_fault(garble);

  // Two single-row requests in one batch: a verdict vector one entry
  // short must fail BOTH typed, not hand request B request A's verdict.
  auto a = service.submit(random_counts(1, 4));
  auto b = service.submit(random_counts(1, 5));
  service.pump(/*force=*/true);
  EXPECT_EQ(a.get().rejected, RejectReason::kInternalError);
  EXPECT_EQ(b.get().rejected, RejectReason::kInternalError);
  EXPECT_EQ(service.stats().batch_failures, 1u);
  EXPECT_EQ(service.stats().rejected_internal, 2u);

  service.clear_model_fault();
  auto c = service.submit(random_counts(1, 6));
  service.pump(/*force=*/true);
  EXPECT_TRUE(c.get().ok());
}

TEST(Chaos, SlowModelExpiresDeadlinePostDequeue) {
  Fixture f;
  runtime::FakeClock clock;
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.clock = &clock;
  auto service = f.make_service(cfg);

  ModelFaultProfile slow;
  slow.name = "always-slow";
  slow.slow_rate = 1.0;
  slow.slow_ms = 50;
  slow.seed = chaos_seed();
  service.set_model_fault(slow);

  SubmitOptions options;
  options.deadline_ms = 10;  // expires during the injected 50ms slowdown
  auto doomed = service.submit(random_counts(2, 7), options);
  auto survivor = service.submit(random_counts(1, 8));
  service.pump(/*force=*/true);

  // The injected latency lands between batch formation and inference, so
  // the post-dequeue gate catches it — the expired rows never reach the
  // model, the live one still scores.
  EXPECT_EQ(doomed.get().rejected, RejectReason::kDeadline);
  EXPECT_TRUE(survivor.get().ok());
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.expired_post_dequeue, 1u);
  EXPECT_EQ(stats.rejected_deadline, 1u);
  EXPECT_EQ(stats.completed_rows, 1u);
}

TEST(Chaos, ThrowingCallbackIsContainedAndCounted) {
  Fixture f;
  runtime::FakeClock clock;
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.clock = &clock;
  auto service = f.make_service(cfg);

  static std::atomic<int> calls{0};
  calls.store(0);
  const auto throwing_callback = +[](void*, ScoreResult&&) {
    calls.fetch_add(1);
    throw std::runtime_error("callback exploded");
  };
  service.submit_with_callback(random_counts(1, 9), {}, throwing_callback,
                               nullptr);
  service.pump(/*force=*/true);
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(service.stats().callback_errors, 1u);

  // The pump survived the throw; the service still scores.
  auto next = service.submit(random_counts(1, 10));
  service.pump(/*force=*/true);
  EXPECT_TRUE(next.get().ok());
  EXPECT_EQ(service.stats().completed_rows, 2u);
}

// ---------------------------------------------------------------------------
// The headline invariant, threaded: for EVERY built-in profile, every
// submission completes exactly once (verdicts or typed rejection), the
// worker pool survives, and the service accepts work after the fault
// clears.

TEST(Chaos, ExactlyOnceUnderEveryBuiltinProfile) {
  Fixture f;
  for (ModelFaultProfile profile : ModelFaultProfile::builtin_profiles()) {
    SCOPED_TRACE(profile.name);
    profile.seed = chaos_seed();
    // Keep the stall burst short enough for a brisk test, long enough to
    // wedge a worker for real.
    if (profile.stall_ms > 50) profile.stall_ms = 50;
    if (profile.slow_ms > 10) profile.slow_ms = 10;

    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.max_batch_rows = 4;
    cfg.max_queue_delay_ms = 1;
    cfg.watchdog.enabled = true;
    cfg.watchdog.stall_ms = 20;
    cfg.watchdog.poll_ms = 5;
    auto service = f.make_service(cfg);
    service.set_model_fault(profile);

    constexpr int kRequests = 60;
    std::vector<ScoreFuture> futures;
    futures.reserve(kRequests);
    std::atomic<int> callback_completions{0};
    for (int i = 0; i < kRequests; ++i) {
      if (i % 3 == 2) {
        // Every third submission exercises the callback path.
        service.submit_with_callback(
            random_counts(1, 1000 + static_cast<std::uint64_t>(i)), {},
            +[](void* ctx, ScoreResult&&) {
              static_cast<std::atomic<int>*>(ctx)->fetch_add(1);
            },
            &callback_completions);
      } else {
        futures.push_back(service.submit(
            random_counts(1, 1000 + static_cast<std::uint64_t>(i))));
      }
    }

    // Every future resolves — scored or typed — and none hang or double.
    std::size_t ok = 0;
    std::size_t internal = 0;
    for (auto& future : futures) {
      ScoreResult result = future.get();
      if (result.ok()) {
        EXPECT_EQ(result.verdicts.size(), 1u);
        ++ok;
      } else {
        EXPECT_EQ(result.rejected, RejectReason::kInternalError)
            << to_string(result.rejected);
        ++internal;
      }
    }
    EXPECT_EQ(ok + internal, futures.size());

    // Callback submissions drained too (workers may still be finishing).
    const int expected_callbacks = kRequests / 3;
    for (int spin = 0;
         spin < 400 && callback_completions.load() < expected_callbacks;
         ++spin)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(callback_completions.load(), expected_callbacks);

    // Threads survived every injected fault: the fault clears and the
    // same pool scores clean work.
    service.clear_model_fault();
    auto after = service.submit(random_counts(2, 42));
    EXPECT_TRUE(after.get().ok());

    service.shutdown(/*drain=*/true);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.accepted_requests,
              stats.completed_requests + stats.rejected_internal);
  }
}

}  // namespace
}  // namespace mev::serve
