// MetricsRegistry behavior: handle semantics, the Prometheus text
// exposition golden file, the JSON snapshot, and thread-safety of handle
// updates (exercised under TSan in CI).
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "runtime/clock.hpp"

namespace {

using mev::obs::Counter;
using mev::obs::MetricsRegistry;

// The exposition escaping helpers are pure string code, compiled in every
// build mode.
TEST(PrometheusEscaping, HelpTextEscapesBackslashAndNewline) {
  EXPECT_EQ(mev::obs::prometheus_escape_help("plain help"), "plain help");
  EXPECT_EQ(mev::obs::prometheus_escape_help("a\\b"), "a\\\\b");
  EXPECT_EQ(mev::obs::prometheus_escape_help("line1\nline2"),
            "line1\\nline2");
  // Double quotes are NOT escaped in HELP text (only in label values).
  EXPECT_EQ(mev::obs::prometheus_escape_help("say \"hi\""), "say \"hi\"");
}

TEST(PrometheusEscaping, LabelValuesEscapeQuotesBackslashAndNewline) {
  EXPECT_EQ(mev::obs::prometheus_escape_label_value("plain"), "plain");
  EXPECT_EQ(mev::obs::prometheus_escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(mev::obs::prometheus_escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(mev::obs::prometheus_escape_label_value("a\nb"), "a\\nb");
  EXPECT_EQ(mev::obs::prometheus_escape_label_value("\\\"\n"),
            "\\\\\\\"\\n");
}

TEST(PrometheusEscaping, NumbersRenderNanAndInfinities) {
  EXPECT_EQ(mev::obs::prometheus_number(
                std::numeric_limits<double>::quiet_NaN()),
            "NaN");
  EXPECT_EQ(
      mev::obs::prometheus_number(std::numeric_limits<double>::infinity()),
      "+Inf");
  EXPECT_EQ(
      mev::obs::prometheus_number(-std::numeric_limits<double>::infinity()),
      "-Inf");
  EXPECT_EQ(mev::obs::prometheus_number(2.0), "2");
  EXPECT_EQ(mev::obs::prometheus_number(0.5), "0.5");
}

#if MEV_OBS_ENABLED

TEST(MetricsRegistry, EmptyRegistryExportsEmptyExposition) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.prometheus(), "");
  EXPECT_EQ(registry.json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}\n");
}

TEST(MetricsRegistry, HelpTextWithNewlineStaysOneExpositionLine) {
  MetricsRegistry registry;
  registry.counter("mev.test.esc", "first\nsecond \\ slash").inc();
  EXPECT_EQ(registry.prometheus(),
            "# HELP mev_test_esc first\\nsecond \\\\ slash\n"
            "# TYPE mev_test_esc counter\n"
            "mev_test_esc 1\n");
}

TEST(MetricsRegistry, NonFiniteGaugeValuesExportPrometheusAndJsonSafely) {
  MetricsRegistry registry;
  registry.gauge("mev.test.nan").set(std::nan(""));
  registry.gauge("mev.test.pinf").set(
      std::numeric_limits<double>::infinity());
  registry.gauge("mev.test.ninf").set(
      -std::numeric_limits<double>::infinity());
  EXPECT_EQ(registry.prometheus(),
            "# TYPE mev_test_nan gauge\n"
            "mev_test_nan NaN\n"
            "# TYPE mev_test_pinf gauge\n"
            "mev_test_pinf +Inf\n"
            "# TYPE mev_test_ninf gauge\n"
            "mev_test_ninf -Inf\n");
  // JSON has no NaN/Infinity literals; non-finite values become null so
  // the snapshot stays parseable.
  EXPECT_EQ(registry.json(),
            "{\"counters\":{},"
            "\"gauges\":{\"mev.test.nan\":null,"
            "\"mev.test.pinf\":null,\"mev.test.ninf\":null},"
            "\"histograms\":{}}\n");
}

TEST(MetricsRegistry, PrometheusGoldenFile) {
  MetricsRegistry registry;
  Counter queries = registry.counter("mev.test.queries", "total queries");
  queries.inc(3);
  registry.gauge("mev.test.loss", "last loss").set(0.5);
  mev::obs::Histogram latency =
      registry.histogram("mev.test.latency_us", "latency");
  latency.record(0);
  latency.record(1);
  latency.record(5);
  latency.record(9);

  // Pinned 0.0.4 text exposition: sanitized names, HELP/TYPE preambles,
  // cumulative integer le buckets (0, 1, 3, 7, 15 = the log2 bucket
  // upper bounds) plus +Inf/_sum/_count.
  EXPECT_EQ(registry.prometheus(),
            "# HELP mev_test_queries total queries\n"
            "# TYPE mev_test_queries counter\n"
            "mev_test_queries 3\n"
            "# HELP mev_test_loss last loss\n"
            "# TYPE mev_test_loss gauge\n"
            "mev_test_loss 0.5\n"
            "# HELP mev_test_latency_us latency\n"
            "# TYPE mev_test_latency_us histogram\n"
            "mev_test_latency_us_bucket{le=\"0\"} 1\n"
            "mev_test_latency_us_bucket{le=\"1\"} 2\n"
            "mev_test_latency_us_bucket{le=\"3\"} 2\n"
            "mev_test_latency_us_bucket{le=\"7\"} 3\n"
            "mev_test_latency_us_bucket{le=\"15\"} 4\n"
            "mev_test_latency_us_bucket{le=\"+Inf\"} 4\n"
            "mev_test_latency_us_sum 15\n"
            "mev_test_latency_us_count 4\n");
}

TEST(MetricsRegistry, JsonSnapshotIsPinned) {
  MetricsRegistry registry;
  registry.counter("mev.test.queries").inc(3);
  registry.gauge("mev.test.loss").set(0.5);
  mev::obs::Histogram latency = registry.histogram("mev.test.latency_us");
  latency.record(0);
  latency.record(1);
  latency.record(5);
  latency.record(9);

  EXPECT_EQ(registry.json(),
            "{\"counters\":{\"mev.test.queries\":3},"
            "\"gauges\":{\"mev.test.loss\":0.5},"
            "\"histograms\":{\"mev.test.latency_us\":"
            "{\"count\":4,\"mean\":3.75,\"min\":0,\"max\":9,"
            "\"p50\":2,\"p95\":9,\"p99\":9}}}\n");
}

TEST(MetricsRegistry, SameNameReturnsTheSameCell) {
  MetricsRegistry registry;
  Counter a = registry.counter("mev.test.shared");
  Counter b = registry.counter("mev.test.shared");
  a.inc();
  b.inc();
  EXPECT_EQ(a.value(), 2u);
  EXPECT_EQ(b.value(), 2u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistry, KindMismatchAndEmptyNameThrow) {
  MetricsRegistry registry;
  registry.counter("mev.test.thing");
  EXPECT_THROW((void)registry.gauge("mev.test.thing"), std::invalid_argument);
  EXPECT_THROW((void)registry.histogram("mev.test.thing"),
               std::invalid_argument);
  EXPECT_THROW((void)registry.counter(""), std::invalid_argument);
}

TEST(MetricsRegistry, DigitPrefixedNamesAreSanitizedForPrometheus) {
  MetricsRegistry registry;
  registry.counter("9lives-of.cats").inc();
  const std::string text = registry.prometheus();
  EXPECT_NE(text.find("_9lives_of_cats 1\n"), std::string::npos);
}

TEST(MetricsRegistry, LabeledCellsAreDistinctPerLabelSet) {
  MetricsRegistry registry;
  Counter full = registry.counter("mev.test.rejected", "rejections",
                                  {{"reason", "queue_full"}});
  Counter deadline = registry.counter("mev.test.rejected", "rejections",
                                      {{"reason", "deadline"}});
  full.inc(2);
  deadline.inc(5);
  EXPECT_EQ(full.value(), 2u);
  EXPECT_EQ(deadline.value(), 5u);
  EXPECT_EQ(registry.size(), 2u);
  // The same (name, labels) pair resolves to the same cell.
  Counter again = registry.counter("mev.test.rejected", "rejections",
                                   {{"reason", "queue_full"}});
  again.inc();
  EXPECT_EQ(full.value(), 3u);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistry, LabeledFamilyExportsOneHeaderManySamples) {
  MetricsRegistry registry;
  registry
      .counter("mev.test.rejected", "rejections", {{"reason", "queue_full"}})
      .inc(2);
  registry.counter("mev.test.rejected", "rejections", {{"reason", "deadline"}})
      .inc(5);
  EXPECT_EQ(registry.prometheus(),
            "# HELP mev_test_rejected rejections\n"
            "# TYPE mev_test_rejected counter\n"
            "mev_test_rejected{reason=\"queue_full\"} 2\n"
            "mev_test_rejected{reason=\"deadline\"} 5\n");
}

TEST(MetricsRegistry, LabeledJsonKeysCarryTheLabelSet) {
  MetricsRegistry registry;
  registry.counter("mev.test.rejected", "", {{"reason", "overloaded"}}).inc(7);
  registry.gauge("mev.test.depth", "", {{"shard", "0"}}).set(1.5);
  EXPECT_EQ(registry.json(),
            "{\"counters\":{\"mev.test.rejected{reason=overloaded}\":7},"
            "\"gauges\":{\"mev.test.depth{shard=0}\":1.5},"
            "\"histograms\":{}}\n");
}

TEST(MetricsRegistry, KindConflictAcrossLabelSetsThrows) {
  MetricsRegistry registry;
  registry.counter("mev.test.family", "", {{"reason", "a"}});
  // One name owns one TYPE: a gauge under the same family name is
  // invalid even with different labels.
  EXPECT_THROW((void)registry.gauge("mev.test.family", "", {{"reason", "b"}}),
               std::invalid_argument);
}

TEST(MetricsRegistry, DefaultConstructedHandlesAreInert) {
  Counter counter;
  counter.inc(5);
  EXPECT_EQ(counter.value(), 0u);
  mev::obs::Gauge gauge;
  gauge.set(3.0);
  EXPECT_EQ(gauge.value(), 0.0);
  mev::obs::Histogram histogram;
  histogram.record(7);
  EXPECT_EQ(histogram.snapshot().count(), 0u);
}

TEST(MetricsRegistry, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  Counter counter = registry.counter("mev.test.concurrent");
  mev::obs::Histogram histogram = registry.histogram("mev.test.conc_hist");
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&counter, &histogram] {
      for (int i = 0; i < kIncrements; ++i) {
        counter.inc();
        histogram.record(static_cast<std::uint64_t>(i));
      }
    });
  // Concurrent export must be safe.
  for (int i = 0; i < 10; ++i) (void)registry.prometheus();
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(histogram.snapshot().count(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsRegistry, WindowedPrometheusGoldenFile) {
  // Pinned windowed exposition: the lifetime family is a plain histogram
  // to scrapers, followed by the `<name>_window{window=...,stat=...}`
  // gauge family evaluated against the registered FakeClock.
  mev::runtime::FakeClock clock;  // ms-based; now_us = ms * 1000
  MetricsRegistry registry;
  mev::obs::WindowedHistogram latency = registry.windowed_histogram(
      "mev.test.win_us", "windowed latency", &clock);
  clock.advance(280'000);  // t = 280 s, inside the default 5-min ring
  latency.record(0);
  latency.record(1);
  latency.record(5);
  latency.record(9);

  clock.advance(10'000);  // read at t = 290 s: both windows see the burst
  EXPECT_EQ(registry.prometheus(),
            "# HELP mev_test_win_us windowed latency\n"
            "# TYPE mev_test_win_us histogram\n"
            "mev_test_win_us_bucket{le=\"0\"} 1\n"
            "mev_test_win_us_bucket{le=\"1\"} 2\n"
            "mev_test_win_us_bucket{le=\"3\"} 2\n"
            "mev_test_win_us_bucket{le=\"7\"} 3\n"
            "mev_test_win_us_bucket{le=\"15\"} 4\n"
            "mev_test_win_us_bucket{le=\"+Inf\"} 4\n"
            "mev_test_win_us_sum 15\n"
            "mev_test_win_us_count 4\n"
            "# HELP mev_test_win_us_window windowed p50/p95/p99/count of "
            "mev_test_win_us\n"
            "# TYPE mev_test_win_us_window gauge\n"
            "mev_test_win_us_window{window=\"1m\",stat=\"p50\"} 2\n"
            "mev_test_win_us_window{window=\"1m\",stat=\"p95\"} 9\n"
            "mev_test_win_us_window{window=\"1m\",stat=\"p99\"} 9\n"
            "mev_test_win_us_window{window=\"1m\",stat=\"count\"} 4\n"
            "mev_test_win_us_window{window=\"5m\",stat=\"p50\"} 2\n"
            "mev_test_win_us_window{window=\"5m\",stat=\"p95\"} 9\n"
            "mev_test_win_us_window{window=\"5m\",stat=\"p99\"} 9\n"
            "mev_test_win_us_window{window=\"5m\",stat=\"count\"} 4\n");
  EXPECT_EQ(registry.json(),
            "{\"counters\":{},\"gauges\":{},"
            "\"histograms\":{\"mev.test.win_us\":"
            "{\"count\":4,\"mean\":3.75,\"min\":0,\"max\":9,"
            "\"p50\":2,\"p95\":9,\"p99\":9,"
            "\"window_1m\":{\"count\":4,\"p50\":2,\"p95\":9,\"p99\":9},"
            "\"window_5m\":{\"count\":4,\"p50\":2,\"p95\":9,\"p99\":9}}}}"
            "\n");

  // t = 345 s: the burst left the 1m window (cutoff 285 s) but not the
  // 5m window; the lifetime family never forgets.
  clock.advance(55'000);
  const std::string text = registry.prometheus();
  EXPECT_NE(
      text.find("mev_test_win_us_window{window=\"1m\",stat=\"count\"} 0\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("mev_test_win_us_window{window=\"1m\",stat=\"p99\"} 0\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("mev_test_win_us_window{window=\"5m\",stat=\"count\"} 4\n"),
      std::string::npos);
  EXPECT_NE(text.find("mev_test_win_us_count 4\n"), std::string::npos);
}

TEST(MetricsRegistry, WindowedHistogramHandleExposesBothViews) {
  mev::runtime::FakeClock clock;
  MetricsRegistry registry;
  mev::obs::WindowedHistogram h =
      registry.windowed_histogram("mev.test.win_handle", "", &clock);
  clock.advance(1'000);
  h.record(7);
  clock.advance(120'000);  // 2 min later: out of 1m, inside 5m
  h.record(3);
  EXPECT_EQ(h.lifetime().count(), 2u);
  EXPECT_EQ(h.windowed(60'000'000).count(), 1u);
  EXPECT_EQ(h.windowed(300'000'000).count(), 2u);
  // Same (name, labels) resolves to the same cell, same ring.
  mev::obs::WindowedHistogram again =
      registry.windowed_histogram("mev.test.win_handle", "", &clock);
  again.record(1);
  EXPECT_EQ(h.lifetime().count(), 3u);
  // A windowed histogram's name owns its kind like any other metric.
  EXPECT_THROW((void)registry.histogram("mev.test.win_handle"),
               std::invalid_argument);
}

#endif  // MEV_OBS_ENABLED

TEST(MetricsRegistry, ApiIsCallableInEveryBuildConfiguration) {
  // In stub builds every call is an inert no-op; in full builds this is
  // just a smoke pass. Either way it must compile and not crash.
  MetricsRegistry registry;
  registry.counter("mev.test.smoke").inc();
  registry.gauge("mev.test.smoke_gauge").set(1.0);
  registry.histogram("mev.test.smoke_hist").record(1);
  mev::runtime::FakeClock clock;
  mev::obs::WindowedHistogram windowed =
      registry.windowed_histogram("mev.test.smoke_win", "", &clock);
  windowed.record(1);
  (void)windowed.lifetime();
  (void)windowed.windowed(60'000'000);
  (void)registry.prometheus();
  (void)registry.json();
  SUCCEED();
}

}  // namespace
