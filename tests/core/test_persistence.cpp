#include "core/persistence.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/experiment_config.hpp"
#include "data/synthetic.hpp"
#include "runtime/atomic_file.hpp"

namespace mev::core {
namespace {

struct Fixture {
  const data::ApiVocab& vocab = data::ApiVocab::instance();
  data::GenerativeModel generator{vocab, data::GenerativeConfig{}};
  data::DatasetBundle bundle;
  DetectorTrainingResult trained;

  Fixture() {
    const auto config = ExperimentConfig::tiny();
    math::Rng rng(config.seed + 5);
    bundle = generator.generate_bundle(data::DatasetSpec::scaled(0.003, 16),
                                       rng);
    auto arch = config.target_architecture();
    auto tc = config.target_training();
    tc.epochs = 5;
    trained = train_detector(bundle, arch, tc, vocab);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(Persistence, RoundTripPreservesVerdicts) {
  auto& f = fixture();
  const std::string prefix = ::testing::TempDir() + "/mev_detector";
  save_detector(*f.trained.detector, prefix);
  auto loaded = load_detector(prefix, f.vocab);
  ASSERT_NE(loaded, nullptr);

  math::Rng rng(77);
  for (int i = 0; i < 5; ++i) {
    const data::ApiLog log = f.generator.generate_log(
        i % 2, "roundtrip_" + std::to_string(i) + ".exe", rng);
    const Verdict a = f.trained.detector->scan(log);
    const Verdict b = loaded->scan(log);
    EXPECT_EQ(a.predicted_class, b.predicted_class);
    EXPECT_NEAR(a.malware_confidence, b.malware_confidence, 1e-6);
  }
}

TEST(Persistence, RoundTripPreservesFeatureTransform) {
  auto& f = fixture();
  const std::string prefix = ::testing::TempDir() + "/mev_detector2";
  save_detector(*f.trained.detector, prefix);
  auto loaded = load_detector(prefix, f.vocab);
  math::Rng rng(78);
  const auto counts = f.generator.generate_counts(data::kMalwareLabel, rng);
  math::Matrix m(1, counts.size());
  m.set_row(0, counts);
  EXPECT_EQ(f.trained.detector->features_of_counts(m),
            loaded->features_of_counts(m));
}

TEST(Persistence, MissingFilesThrow) {
  auto& f = fixture();
  EXPECT_THROW(load_detector("/nonexistent/prefix", f.vocab),
               std::runtime_error);
}

TEST(Persistence, CorruptTransformThrows) {
  auto& f = fixture();
  const std::string prefix = ::testing::TempDir() + "/mev_detector3";
  save_detector(*f.trained.detector, prefix);
  // Corrupt the transform file header.
  {
    std::ofstream ts(prefix + ".transform");
    ts << "mystery\n";
  }
  EXPECT_THROW(load_detector(prefix, f.vocab), std::runtime_error);
}

TEST(Persistence, TruncatedNetworkIsRejected) {
  auto& f = fixture();
  const std::string prefix = ::testing::TempDir() + "/mev_detector_trunc";
  save_detector(*f.trained.detector, prefix);
  const auto size = std::filesystem::file_size(prefix + ".net");
  std::filesystem::resize_file(prefix + ".net", size / 2);
  EXPECT_THROW(load_detector(prefix, f.vocab), std::runtime_error);
}

TEST(Persistence, FlippedByteFailsChecksum) {
  auto& f = fixture();
  const std::string prefix = ::testing::TempDir() + "/mev_detector_flip";
  save_detector(*f.trained.detector, prefix);
  // Flip one byte deep inside the payload (past the 24-byte header).
  std::fstream file(prefix + ".net",
                    std::ios::in | std::ios::out | std::ios::binary);
  file.seekg(64);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(64);
  file.write(&byte, 1);
  file.close();
  EXPECT_THROW(load_detector(prefix, f.vocab), std::runtime_error);
}

TEST(Persistence, WrongMagicIsRejected) {
  auto& f = fixture();
  const std::string prefix = ::testing::TempDir() + "/mev_detector_magic";
  save_detector(*f.trained.detector, prefix);
  // A well-formed envelope of the wrong type must not load as a network.
  const std::string payload =
      runtime::read_envelope(prefix + ".transform", 0x4d455654u, 1,
                            "feature transform");
  runtime::write_envelope_atomic(prefix + ".net", 0x4d455654u, 1, payload);
  EXPECT_THROW(load_detector(prefix, f.vocab), std::runtime_error);
}

TEST(Persistence, SaveLeavesNoTempFiles) {
  auto& f = fixture();
  const std::string dir = ::testing::TempDir() + "/mev_notmp";
  std::filesystem::create_directories(dir);
  save_detector(*f.trained.detector, dir + "/det");
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
}

TEST(Persistence, CheckpointRoundTrips) {
  BlackBoxCheckpoint ckpt;
  ckpt.config_fingerprint = 0xfeedbeefu;
  ckpt.next_round = 3;
  ckpt.finished = false;
  ckpt.total_queries = 112;
  ckpt.counts = math::Matrix(4, 3);
  for (std::size_t i = 0; i < ckpt.counts.size(); ++i)
    ckpt.counts.data()[i] = static_cast<float>(i);
  BlackBoxRoundStats stats;
  stats.dataset_rows = 16;
  stats.oracle_queries = 48;
  stats.oracle_agreement = 0.875;
  stats.resilience.retries = 7;
  stats.resilience.backoff_ms = 1234;
  stats.cache_hits = 5;
  stats.label_us = 1500;
  stats.train_us = 98765;
  stats.augment_us = 222;
  ckpt.rounds = {stats};
  nn::MlpConfig arch;
  arch.dims = {3, 8, 2};
  arch.seed = 11;
  ckpt.substitute = nn::make_mlp(arch);
  ckpt.attacker_transform.fit(ckpt.counts);
  ckpt.cache_rows = ckpt.counts;
  ckpt.cache_labels = {0, 1, 1, 0};

  const std::string path = ::testing::TempDir() + "/mev_ckpt_roundtrip";
  save_blackbox_checkpoint(ckpt, path);
  const BlackBoxCheckpoint loaded = load_blackbox_checkpoint(path);

  EXPECT_EQ(loaded.config_fingerprint, ckpt.config_fingerprint);
  EXPECT_EQ(loaded.next_round, 3u);
  EXPECT_FALSE(loaded.finished);
  EXPECT_EQ(loaded.total_queries, 112u);
  EXPECT_EQ(loaded.counts, ckpt.counts);
  ASSERT_EQ(loaded.rounds.size(), 1u);
  EXPECT_EQ(loaded.rounds[0].dataset_rows, 16u);
  EXPECT_EQ(loaded.rounds[0].oracle_queries, 48u);
  EXPECT_EQ(loaded.rounds[0].oracle_agreement, 0.875);
  EXPECT_EQ(loaded.rounds[0].resilience.retries, 7u);
  EXPECT_EQ(loaded.rounds[0].resilience.backoff_ms, 1234u);
  EXPECT_EQ(loaded.rounds[0].cache_hits, 5u);
  EXPECT_EQ(loaded.rounds[0].label_us, 1500u);
  EXPECT_EQ(loaded.rounds[0].train_us, 98765u);
  EXPECT_EQ(loaded.rounds[0].augment_us, 222u);
  EXPECT_EQ(loaded.cache_rows, ckpt.cache_rows);
  EXPECT_EQ(loaded.cache_labels, ckpt.cache_labels);
  EXPECT_TRUE(loaded.attacker_transform.fitted());
  EXPECT_EQ(loaded.attacker_transform.dim(), 3u);

  std::ostringstream a, b;
  nn::save_network(ckpt.substitute, a);
  nn::save_network(loaded.substitute, b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Persistence, MissingCheckpointThrows) {
  EXPECT_THROW(load_blackbox_checkpoint("/nonexistent/ckpt"),
               std::runtime_error);
}

// Builds a minimal saveable checkpoint with one round of stats.
BlackBoxCheckpoint tiny_checkpoint() {
  BlackBoxCheckpoint ckpt;
  ckpt.config_fingerprint = 0x1234u;
  ckpt.next_round = 1;
  ckpt.total_queries = 16;
  ckpt.counts = math::Matrix(2, 3);
  BlackBoxRoundStats stats;
  stats.dataset_rows = 16;
  stats.oracle_queries = 16;
  stats.label_us = 10;
  stats.train_us = 20;
  stats.augment_us = 30;
  ckpt.rounds = {stats};
  nn::MlpConfig arch;
  arch.dims = {3, 4, 2};
  ckpt.substitute = nn::make_mlp(arch);
  ckpt.attacker_transform.fit(ckpt.counts);
  ckpt.cache_rows = math::Matrix(0, 0);
  return ckpt;
}

constexpr std::uint32_t kCkptMagic = 0x4d455643u;  // "MEVC"

// A version-1 checkpoint (written before the per-round phase durations
// existed) must still load, with the durations defaulting to zero. The
// v1 payload is reconstructed by byte surgery on a v2 file: the fixed
// 33-byte preamble (fingerprint, next_round, finished, total_queries,
// round count) is followed by the round-stats record, whose v2 form ends
// with the three appended u64 duration fields — dropping those 24 bytes
// yields the exact v1 layout.
TEST(Persistence, VersionOneCheckpointLoadsWithZeroDurations) {
  const std::string path = ::testing::TempDir() + "/mev_ckpt_v1";
  save_blackbox_checkpoint(tiny_checkpoint(), path);

  std::uint32_t version = 0;
  std::string payload = runtime::read_envelope_versioned(
      path, kCkptMagic, 1, 2, version, "black-box checkpoint");
  ASSERT_EQ(version, 2u);
  const std::size_t kPreamble = 33;   // 4 u64 fields + 1 u8 flag
  const std::size_t kV1Record = 104;  // 13 8-byte stats fields
  payload.erase(kPreamble + kV1Record, 24);
  runtime::write_envelope_atomic(path, kCkptMagic, 1, payload);

  const BlackBoxCheckpoint loaded = load_blackbox_checkpoint(path);
  ASSERT_EQ(loaded.rounds.size(), 1u);
  EXPECT_EQ(loaded.rounds[0].dataset_rows, 16u);
  EXPECT_EQ(loaded.rounds[0].oracle_queries, 16u);
  EXPECT_EQ(loaded.rounds[0].label_us, 0u);
  EXPECT_EQ(loaded.rounds[0].train_us, 0u);
  EXPECT_EQ(loaded.rounds[0].augment_us, 0u);
  EXPECT_EQ(loaded.config_fingerprint, 0x1234u);
}

TEST(Persistence, FutureCheckpointVersionIsRejected) {
  const std::string path = ::testing::TempDir() + "/mev_ckpt_future";
  save_blackbox_checkpoint(tiny_checkpoint(), path);
  std::uint32_t version = 0;
  const std::string payload = runtime::read_envelope_versioned(
      path, kCkptMagic, 1, 2, version, "black-box checkpoint");
  runtime::write_envelope_atomic(path, kCkptMagic, 99, payload);
  EXPECT_THROW(load_blackbox_checkpoint(path), std::runtime_error);
}

}  // namespace
}  // namespace mev::core
