# Empty compiler generated dependencies file for mev_math.
# This may be replaced when dependencies are built.
