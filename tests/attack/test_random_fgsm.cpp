#include <gtest/gtest.h>

#include <stdexcept>

#include "attack/fgsm.hpp"
#include "attack/random_attack.hpp"
#include "nn/trainer.hpp"

namespace mev::attack {
namespace {

nn::Network tiny_net() {
  nn::MlpConfig cfg;
  cfg.dims = {6, 12, 2};
  cfg.seed = 21;
  return nn::make_mlp(cfg);
}

math::Matrix inputs() {
  math::Rng rng(22);
  math::Matrix x(8, 6);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = static_cast<float>(rng.uniform(0.0, 0.8));
  return x;
}

TEST(RandomAddition, ConfigValidation) {
  RandomAdditionConfig bad;
  bad.theta = -1.0f;
  EXPECT_THROW(RandomAddition{bad}, std::invalid_argument);
  RandomAdditionConfig bad2;
  bad2.gamma = 2.0f;
  EXPECT_THROW(RandomAddition{bad2}, std::invalid_argument);
}

TEST(RandomAddition, AddOnlyAndBudget) {
  nn::Network net = tiny_net();
  const math::Matrix x = inputs();
  RandomAdditionConfig cfg;
  cfg.theta = 0.2f;
  cfg.gamma = 0.5f;  // 3 features of 6
  const AttackResult r = RandomAddition(cfg).craft(net, x);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_LE(r.features_changed[i], 3u);
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_GE(r.adversarial(i, j), x(i, j) - 1e-6);
      EXPECT_LE(r.adversarial(i, j), 1.0f + 1e-6);
    }
  }
}

TEST(RandomAddition, DeterministicInSeed) {
  nn::Network net = tiny_net();
  const math::Matrix x = inputs();
  RandomAdditionConfig cfg;
  cfg.seed = 5;
  cfg.theta = 0.3f;
  cfg.gamma = 0.5f;
  const auto a = RandomAddition(cfg).craft(net, x);
  const auto b = RandomAddition(cfg).craft(net, x);
  EXPECT_EQ(a.adversarial, b.adversarial);
  cfg.seed = 6;
  const auto c = RandomAddition(cfg).craft(net, x);
  EXPECT_NE(a.adversarial, c.adversarial);
}

TEST(RandomAddition, DifferentRowsGetDifferentFeatures) {
  nn::Network net = tiny_net();
  math::Matrix x(4, 6);  // all zeros
  RandomAdditionConfig cfg;
  cfg.theta = 1.0f;
  cfg.gamma = 0.34f;  // 2 features
  const auto r = RandomAddition(cfg).craft(net, x);
  bool any_difference = false;
  for (std::size_t i = 1; i < 4 && !any_difference; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      if (r.adversarial(i, j) != r.adversarial(0, j)) any_difference = true;
  EXPECT_TRUE(any_difference);
}

TEST(RandomAddition, EmptyBatch) {
  nn::Network net = tiny_net();
  const auto r = RandomAddition(RandomAdditionConfig{})
                     .craft(net, math::Matrix(0, 6));
  EXPECT_EQ(r.size(), 0u);
}

TEST(FgsmAddOnly, ConfigValidation) {
  FgsmConfig bad;
  bad.theta = -0.5f;
  EXPECT_THROW(FgsmAddOnly{bad}, std::invalid_argument);
}

TEST(FgsmAddOnly, OnlyMovesTowardTargetAndUp) {
  nn::Network net = tiny_net();
  const math::Matrix x = inputs();
  FgsmConfig cfg;
  cfg.theta = 0.1f;
  const AttackResult r = FgsmAddOnly(cfg).craft(net, x);
  const math::Matrix grad = net.input_gradient(x, cfg.target_class);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      const float delta = r.adversarial(i, j) - x(i, j);
      EXPECT_GE(delta, 0.0f);
      if (grad(i, j) <= 0.0f) {
        EXPECT_EQ(delta, 0.0f);
      }
    }
  }
}

TEST(FgsmAddOnly, DeltaBoundedByTheta) {
  nn::Network net = tiny_net();
  const math::Matrix x = inputs();
  FgsmConfig cfg;
  cfg.theta = 0.07f;
  const AttackResult r = FgsmAddOnly(cfg).craft(net, x);
  for (std::size_t i = 0; i < r.adversarial.size(); ++i)
    EXPECT_LE(r.adversarial.data()[i] - x.data()[i], cfg.theta + 1e-6);
}

TEST(FgsmAddOnly, TouchesMoreFeaturesThanJsmaWould) {
  nn::Network net = tiny_net();
  const math::Matrix x = inputs();
  FgsmConfig cfg;
  cfg.theta = 0.1f;
  const AttackResult r = FgsmAddOnly(cfg).craft(net, x);
  // Dense attack: typically perturbs about half the features (positive
  // gradient direction), far more than a gamma-limited JSMA.
  EXPECT_GT(r.mean_features_changed(), 1.0);
}

TEST(FgsmAddOnly, EmptyBatch) {
  nn::Network net = tiny_net();
  const auto r = FgsmAddOnly(FgsmConfig{}).craft(net, math::Matrix(0, 6));
  EXPECT_EQ(r.size(), 0u);
}

TEST(AttackResult, Aggregates) {
  AttackResult r;
  r.evaded = {true, false, true, false};
  r.features_changed = {2, 4, 6, 0};
  r.l2_perturbation = {1.0, 2.0, 3.0, 0.0};
  EXPECT_DOUBLE_EQ(r.success_rate(), 0.5);
  EXPECT_DOUBLE_EQ(r.mean_features_changed(), 3.0);
  EXPECT_DOUBLE_EQ(r.mean_l2(), 1.5);
  EXPECT_DOUBLE_EQ(AttackResult{}.success_rate(), 0.0);
}

}  // namespace
}  // namespace mev::attack
