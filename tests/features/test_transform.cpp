#include "features/transform.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "math/rng.hpp"

namespace mev::features {
namespace {

math::Matrix train_counts() {
  return math::Matrix{{0, 2, 10}, {4, 0, 5}, {2, 8, 0}};
}

TEST(CountTransform, LinearScalesByMax) {
  CountTransform t(CountScaling::kLinear);
  t.fit(train_counts());
  const std::vector<float> row{2, 4, 5};
  const auto out = t.apply_row(row);
  EXPECT_NEAR(out[0], 0.5f, 1e-6);   // max 4
  EXPECT_NEAR(out[1], 0.5f, 1e-6);   // max 8
  EXPECT_NEAR(out[2], 0.5f, 1e-6);   // max 10
}

TEST(CountTransform, Log1pScales) {
  CountTransform t(CountScaling::kLog1p);
  t.fit(train_counts());
  const std::vector<float> row{4, 0, 0};
  const auto out = t.apply_row(row);
  EXPECT_NEAR(out[0], 1.0f, 1e-6);  // at training max
  EXPECT_EQ(out[1], 0.0f);
}

TEST(CountTransform, OutputsClampedToUnitInterval) {
  CountTransform t;
  t.fit(train_counts());
  const std::vector<float> row{100, 100, 100};  // above training max
  for (float v : t.apply_row(row)) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
  const std::vector<float> neg{-5, -5, -5};
  for (float v : t.apply_row(neg)) EXPECT_EQ(v, 0.0f);
}

TEST(CountTransform, UnseenFeatureUsesFloorDenominator) {
  // A feature never observed (all zeros) must not divide by zero; one call
  // maps to a full-scale feature.
  CountTransform t;
  t.fit(math::Matrix{{0, 0}, {0, 0}});
  const std::vector<float> row{1, 3};
  const auto out = t.apply_row(row);
  EXPECT_EQ(out[0], 1.0f);
  EXPECT_EQ(out[1], 1.0f);
}

class CountTransformRoundTrip
    : public ::testing::TestWithParam<CountScaling> {};

TEST_P(CountTransformRoundTrip, InverseRecoversIntegerCounts) {
  CountTransform t(GetParam());
  math::Rng rng(5);
  math::Matrix counts(20, 10);
  for (std::size_t i = 0; i < counts.size(); ++i)
    counts.data()[i] = static_cast<float>(rng.poisson(4.0));
  t.fit(counts);
  // Property: counts_for_feature_value(apply(c)) == c for in-range counts.
  for (std::size_t r = 0; r < counts.rows(); ++r) {
    const auto features = t.apply_row(counts.row(r));
    for (std::size_t c = 0; c < counts.cols(); ++c) {
      EXPECT_EQ(t.counts_for_feature_value(c, features[c]),
                static_cast<std::size_t>(counts(r, c)))
          << "row " << r << " col " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothScalings, CountTransformRoundTrip,
                         ::testing::Values(CountScaling::kLinear,
                                           CountScaling::kLog1p));

TEST(CountTransform, CountsForFeatureValueErrors) {
  CountTransform t;
  EXPECT_THROW(t.counts_for_feature_value(0, 0.5f), std::logic_error);
  t.fit(train_counts());
  EXPECT_THROW(t.counts_for_feature_value(99, 0.5f), std::out_of_range);
}

TEST(CountTransform, ApplyBeforeFitThrows) {
  CountTransform t;
  const std::vector<float> row{1, 2, 3};
  EXPECT_THROW(t.apply_row(row), std::logic_error);
}

TEST(CountTransform, DimensionMismatchThrows) {
  CountTransform t;
  t.fit(train_counts());
  const std::vector<float> row{1, 2};
  EXPECT_THROW(t.apply_row(row), std::invalid_argument);
}

TEST(CountTransform, FitEmptyThrows) {
  CountTransform t;
  EXPECT_THROW(t.fit(math::Matrix()), std::invalid_argument);
}

TEST(CountTransform, SaveLoadRoundTrip) {
  CountTransform t(CountScaling::kLog1p);
  t.fit(train_counts());
  std::stringstream buffer;
  t.save(buffer);
  const CountTransform loaded = CountTransform::load(buffer);
  EXPECT_EQ(loaded.scaling(), CountScaling::kLog1p);
  EXPECT_EQ(loaded.denominators(), t.denominators());
}

TEST(CountTransform, LoadRejectsGarbage) {
  std::stringstream buffer("whatever 3");
  EXPECT_THROW(CountTransform::load(buffer), std::runtime_error);
  std::stringstream truncated("linear 5\n1.0\n");
  EXPECT_THROW(CountTransform::load(truncated), std::runtime_error);
}

TEST(CountTransform, CloneIsIndependent) {
  CountTransform t;
  t.fit(train_counts());
  auto clone = t.clone();
  EXPECT_EQ(clone->dim(), t.dim());
  EXPECT_EQ(clone->name(), "count");
}

TEST(BinaryTransform, PresenceAbsence) {
  const BinaryTransform t(3);
  const std::vector<float> row{0, 1, 7};
  const auto out = t.apply_row(row);
  EXPECT_EQ(out[0], 0.0f);
  EXPECT_EQ(out[1], 1.0f);
  EXPECT_EQ(out[2], 1.0f);
}

TEST(BinaryTransform, DimMismatchThrows) {
  const BinaryTransform t(3);
  const std::vector<float> row{1, 2};
  EXPECT_THROW(t.apply_row(row), std::invalid_argument);
}

TEST(FeatureTransform, BatchApplyMatchesRowApply) {
  CountTransform t;
  const math::Matrix counts = train_counts();
  t.fit(counts);
  const math::Matrix batch = t.apply(counts);
  for (std::size_t r = 0; r < counts.rows(); ++r) {
    const auto row = t.apply_row(counts.row(r));
    for (std::size_t c = 0; c < counts.cols(); ++c)
      EXPECT_EQ(batch(r, c), row[c]);
  }
}

TEST(FeatureTransform, MonotoneInCounts) {
  // Property: more calls never decreases a feature (add-only soundness).
  CountTransform t;
  math::Rng rng(9);
  math::Matrix counts(10, 6);
  for (std::size_t i = 0; i < counts.size(); ++i)
    counts.data()[i] = static_cast<float>(rng.poisson(3.0));
  t.fit(counts);
  for (std::size_t r = 0; r < counts.rows(); ++r) {
    std::vector<float> base(counts.row(r).begin(), counts.row(r).end());
    auto bumped = base;
    for (auto& c : bumped) c += 2.0f;
    const auto f0 = t.apply_row(base);
    const auto f1 = t.apply_row(bumped);
    for (std::size_t c = 0; c < base.size(); ++c)
      EXPECT_GE(f1[c], f0[c]);
  }
}

}  // namespace
}  // namespace mev::features
