# Empty dependencies file for bench_fig2_blackbox.
# This may be replaced when dependencies are built.
