#include "nn/activation.hpp"

#include <cmath>
#include <stdexcept>

namespace mev::nn {

void apply_activation(Activation act, math::Matrix& z) {
  float* p = z.data();
  const std::size_t n = z.size();
  switch (act) {
    case Activation::kIdentity:
      return;
    case Activation::kRelu:
      for (std::size_t i = 0; i < n; ++i) p[i] = p[i] > 0.0f ? p[i] : 0.0f;
      return;
    case Activation::kSigmoid:
      for (std::size_t i = 0; i < n; ++i) p[i] = 1.0f / (1.0f + std::exp(-p[i]));
      return;
    case Activation::kTanh:
      for (std::size_t i = 0; i < n; ++i) p[i] = std::tanh(p[i]);
      return;
    case Activation::kLeakyRelu:
      for (std::size_t i = 0; i < n; ++i)
        p[i] = p[i] > 0.0f ? p[i] : 0.01f * p[i];
      return;
  }
  throw std::invalid_argument("apply_activation: unknown activation");
}

void apply_activation_grad(Activation act, const math::Matrix& z,
                           const math::Matrix& a, math::Matrix& grad) {
  if (!grad.same_shape(z) || !grad.same_shape(a))
    throw std::invalid_argument("apply_activation_grad: shape mismatch");
  float* g = grad.data();
  const float* zp = z.data();
  const float* ap = a.data();
  const std::size_t n = grad.size();
  switch (act) {
    case Activation::kIdentity:
      return;
    case Activation::kRelu:
      for (std::size_t i = 0; i < n; ++i)
        if (zp[i] <= 0.0f) g[i] = 0.0f;
      return;
    case Activation::kSigmoid:
      for (std::size_t i = 0; i < n; ++i) g[i] *= ap[i] * (1.0f - ap[i]);
      return;
    case Activation::kTanh:
      for (std::size_t i = 0; i < n; ++i) g[i] *= 1.0f - ap[i] * ap[i];
      return;
    case Activation::kLeakyRelu:
      for (std::size_t i = 0; i < n; ++i)
        if (zp[i] <= 0.0f) g[i] *= 0.01f;
      return;
  }
  throw std::invalid_argument("apply_activation_grad: unknown activation");
}

std::string to_string(Activation act) {
  switch (act) {
    case Activation::kIdentity: return "identity";
    case Activation::kRelu: return "relu";
    case Activation::kSigmoid: return "sigmoid";
    case Activation::kTanh: return "tanh";
    case Activation::kLeakyRelu: return "leaky_relu";
  }
  return "unknown";
}

Activation activation_from_string(const std::string& name) {
  if (name == "identity") return Activation::kIdentity;
  if (name == "relu") return Activation::kRelu;
  if (name == "sigmoid") return Activation::kSigmoid;
  if (name == "tanh") return Activation::kTanh;
  if (name == "leaky_relu") return Activation::kLeakyRelu;
  throw std::invalid_argument("activation_from_string: " + name);
}

}  // namespace mev::nn
