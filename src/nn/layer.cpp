#include "nn/layer.hpp"

#include <cmath>
#include <stdexcept>

namespace mev::nn {

DenseLayer::DenseLayer(std::size_t in, std::size_t out, Activation act,
                       math::Rng& rng)
    : weights_(in, out), bias_(1, out), activation_(act) {
  if (in == 0 || out == 0)
    throw std::invalid_argument("DenseLayer: zero dimension");
  // He initialization for relu-family activations, Glorot otherwise.
  const bool relu_family =
      act == Activation::kRelu || act == Activation::kLeakyRelu;
  const double scale = relu_family
                           ? std::sqrt(2.0 / static_cast<double>(in))
                           : std::sqrt(2.0 / static_cast<double>(in + out));
  for (std::size_t i = 0; i < weights_.rows(); ++i)
    for (std::size_t j = 0; j < weights_.cols(); ++j)
      weights_(i, j) = static_cast<float>(rng.normal(0.0, scale));
}

DenseLayer::DenseLayer(math::Matrix weights, math::Matrix bias, Activation act)
    : weights_(std::move(weights)), bias_(std::move(bias)), activation_(act) {
  if (bias_.rows() != 1 || bias_.cols() != weights_.cols())
    throw std::invalid_argument("DenseLayer: bias/weight shape mismatch");
}

void DenseLayer::forward(const math::Matrix& x, LayerWorkspace& ws,
                         bool /*training*/) const {
  if (x.cols() != weights_.rows())
    throw std::invalid_argument("DenseLayer::forward: dimension mismatch");
  math::matmul_into(x, weights_, ws.pre_activation);
  math::add_row_broadcast(ws.pre_activation, bias_.row(0));
  ws.output = ws.pre_activation;
  apply_activation(activation_, ws.output);
}

void DenseLayer::backward(math::Matrix& grad_output, const math::Matrix& input,
                          LayerWorkspace& ws,
                          bool accumulate_param_grads) const {
  if (!grad_output.same_shape(ws.output))
    throw std::invalid_argument("DenseLayer::backward: shape mismatch");
  // grad_output becomes dLoss/dPreActivation in place.
  apply_activation_grad(activation_, ws.pre_activation, ws.output, grad_output);

  if (accumulate_param_grads) {
    math::matmul_at_b_into(input, grad_output, ws.param_grads[0],
                           /*accumulate=*/true);
    math::add_column_sums(grad_output, ws.param_grads[1]);
  }

  math::matmul_a_bt_into(grad_output, weights_, ws.grad_input);
}

void DenseLayer::init_workspace(LayerWorkspace& ws) const {
  ws.param_grads.clear();
  ws.param_grads.emplace_back(weights_.rows(), weights_.cols());
  ws.param_grads.emplace_back(1, bias_.cols());
}

std::vector<math::Matrix*> DenseLayer::param_values() {
  return {&weights_, &bias_};
}

std::vector<const math::Matrix*> DenseLayer::param_values() const {
  return {&weights_, &bias_};
}

std::unique_ptr<Layer> DenseLayer::clone() const {
  return std::make_unique<DenseLayer>(weights_, bias_, activation_);
}

DropoutLayer::DropoutLayer(std::size_t dim, float rate, std::uint64_t seed)
    : dim_(dim), rate_(rate), seed_(seed), rng_(seed) {
  if (rate < 0.0f || rate >= 1.0f)
    throw std::invalid_argument("DropoutLayer: rate must be in [0, 1)");
}

void DropoutLayer::forward(const math::Matrix& x, LayerWorkspace& ws,
                           bool training) const {
  if (x.cols() != dim_)
    throw std::invalid_argument("DropoutLayer::forward: dimension mismatch");
  if (!training || rate_ == 0.0f) {
    ws.mask.resize(0, 0);  // flags the pass as inference for backward
    ws.output = x;
    return;
  }
  const float keep = 1.0f - rate_;
  const float scale = 1.0f / keep;
  ws.mask.resize(x.rows(), x.cols());
  ws.output = x;
  for (std::size_t i = 0; i < ws.mask.size(); ++i) {
    const float m = rng_.bernoulli(keep) ? scale : 0.0f;
    ws.mask.data()[i] = m;
    ws.output.data()[i] *= m;
  }
}

void DropoutLayer::backward(math::Matrix& grad_output,
                            const math::Matrix& /*input*/, LayerWorkspace& ws,
                            bool /*accumulate_param_grads*/) const {
  ws.grad_input = grad_output;
  if (!ws.mask.empty()) ws.grad_input.hadamard(ws.mask);
}

std::unique_ptr<Layer> DropoutLayer::clone() const {
  return std::make_unique<DropoutLayer>(dim_, rate_, seed_);
}

}  // namespace mev::nn
