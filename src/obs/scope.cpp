#include "obs/scope.hpp"

namespace mev::obs {

// This file compiles identically with obs enabled or stubbed: the Scope /
// default-sink machinery is only pointer plumbing either way.

namespace {

thread_local Tracer* tls_tracer = nullptr;
thread_local MetricsRegistry* tls_registry = nullptr;

}  // namespace

Tracer& default_tracer() {
  // Disabled until someone opts in: an un-instrumented run pays one
  // relaxed atomic load per span site and nothing else.
  static Tracer tracer(TracerConfig{.ring_capacity = 1 << 16,
                                    .clock = nullptr,
                                    .enabled = false});
  return tracer;
}

MetricsRegistry& default_registry() {
  static MetricsRegistry registry;
  return registry;
}

Tracer* current_tracer() noexcept {
  return tls_tracer != nullptr ? tls_tracer : &default_tracer();
}

MetricsRegistry* current_registry() noexcept {
  return tls_registry != nullptr ? tls_registry : &default_registry();
}

Scope::Scope(Tracer* tracer, MetricsRegistry* registry) noexcept
    : previous_tracer_(tls_tracer), previous_registry_(tls_registry) {
  if (tracer != nullptr) tls_tracer = tracer;
  if (registry != nullptr) tls_registry = registry;
}

Scope::~Scope() {
  tls_tracer = previous_tracer_;
  tls_registry = previous_registry_;
}

}  // namespace mev::obs
