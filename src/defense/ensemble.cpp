#include "defense/ensemble.hpp"

#include <stdexcept>

#include "data/dataset.hpp"

namespace mev::defense {

EnsembleClassifier::EnsembleClassifier(
    std::vector<std::shared_ptr<Classifier>> members, VotePolicy policy)
    : members_(std::move(members)), policy_(policy) {
  if (members_.empty())
    throw std::invalid_argument("EnsembleClassifier: no members");
  for (const auto& m : members_)
    if (m == nullptr)
      throw std::invalid_argument("EnsembleClassifier: null member");
}

std::vector<int> EnsembleClassifier::classify(const math::Matrix& features) {
  std::vector<std::size_t> malware_votes(features.rows(), 0);
  for (const auto& member : members_) {
    const auto preds = member->classify(features);
    for (std::size_t i = 0; i < preds.size(); ++i)
      if (preds[i] == data::kMalwareLabel) ++malware_votes[i];
  }
  std::vector<int> out(features.rows(), data::kCleanLabel);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const bool malware =
        policy_ == VotePolicy::kAnyMalware
            ? malware_votes[i] > 0
            : 2 * malware_votes[i] >= members_.size();  // ties -> malware
    if (malware) out[i] = data::kMalwareLabel;
  }
  return out;
}

std::vector<double> EnsembleClassifier::malware_confidence(
    const math::Matrix& features) {
  std::vector<double> mean(features.rows(), 0.0);
  for (const auto& member : members_) {
    const auto conf = member->malware_confidence(features);
    for (std::size_t i = 0; i < conf.size(); ++i) mean[i] += conf[i];
  }
  for (auto& v : mean) v /= static_cast<double>(members_.size());
  return mean;
}

std::string EnsembleClassifier::name() const {
  std::string out = policy_ == VotePolicy::kAnyMalware ? "ensemble-any("
                                                       : "ensemble-maj(";
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (i) out += "+";
    out += members_[i]->name();
  }
  return out + ")";
}

}  // namespace mev::defense
