file(REMOVE_RECURSE
  "CMakeFiles/bench_live_greybox.dir/bench_live_greybox.cpp.o"
  "CMakeFiles/bench_live_greybox.dir/bench_live_greybox.cpp.o.d"
  "bench_live_greybox"
  "bench_live_greybox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_live_greybox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
