#include "obs/flight_recorder.hpp"

namespace mev::obs {

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(config) {
  if (config_.slow_slots == 0) config_.slow_slots = 1;
  if (config_.error_slots == 0) config_.error_slots = 1;
  if (config_.window_us == 0) config_.window_us = 1;
  slow_banks_[0] = std::vector<Slot>(config_.slow_slots);
  slow_banks_[1] = std::vector<Slot>(config_.slow_slots);
  error_ring_ = std::vector<Slot>(config_.error_slots);
}

bool FlightRecorder::try_store(Slot& slot,
                               const FlightRecord& record) noexcept {
  if (slot.busy.exchange(true, std::memory_order_acquire)) return false;
  slot.record = record;
  slot.duration.store(record.duration_us != 0 ? record.duration_us : 1,
                      std::memory_order_relaxed);
  slot.busy.store(false, std::memory_order_release);
  return true;
}

void FlightRecorder::record(const FlightRecord& record) noexcept {
  if (record.error) {
    record_error(record);
  } else {
    record_slow(record);
  }
}

void FlightRecorder::record_error(const FlightRecord& record) noexcept {
  const std::uint64_t n =
      error_cursor_.fetch_add(1, std::memory_order_relaxed);
  if (try_store(error_ring_[n % error_ring_.size()], record)) {
    recorded_.fetch_add(1, std::memory_order_relaxed);
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FlightRecorder::record_slow(const FlightRecord& record) noexcept {
  // Rotate banks when this record's start crosses into a new window. The
  // winner of the CAS clears the bank the new window maps to (the other
  // bank keeps the previous window's slowest until it is reused in turn).
  const std::uint64_t window = record.start_us / config_.window_us;
  std::uint64_t current = window_.load(std::memory_order_relaxed);
  if (window > current &&
      window_.compare_exchange_strong(current, window,
                                      std::memory_order_relaxed)) {
    for (Slot& slot : slow_banks_[window & 1]) {
      if (!slot.busy.exchange(true, std::memory_order_acquire)) {
        slot.duration.store(0, std::memory_order_relaxed);
        slot.busy.store(false, std::memory_order_release);
      }
      // A busy slot keeps its stale record; it loses the next min-scan.
    }
  }

  std::vector<Slot>& bank =
      slow_banks_[window_.load(std::memory_order_relaxed) & 1];
  // Two attempts: the min-duration slot, then (if a racer took it) the
  // second-smallest. Losing both races drops the record.
  std::size_t skip = bank.size();
  for (int attempt = 0; attempt < 2; ++attempt) {
    std::size_t victim = bank.size();
    std::uint64_t victim_duration = ~std::uint64_t{0};
    for (std::size_t i = 0; i < bank.size(); ++i) {
      if (i == skip) continue;
      const std::uint64_t d = bank[i].duration.load(std::memory_order_relaxed);
      if (d == 0) {  // empty slot: take it outright
        victim = i;
        victim_duration = 0;
        break;
      }
      if (d < victim_duration) {
        victim = i;
        victim_duration = d;
      }
    }
    if (victim == bank.size() ||
        (victim_duration != 0 && record.duration_us <= victim_duration)) {
      return;  // not among the window's slowest — intentionally not kept
    }
    if (try_store(bank[victim], record)) {
      recorded_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    skip = victim;
  }
  dropped_.fetch_add(1, std::memory_order_relaxed);  // lost both slot races
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  std::vector<FlightRecord> out;
  out.reserve(2 * config_.slow_slots + config_.error_slots);
  const auto drain = [&out](const std::vector<Slot>& slots) {
    for (const Slot& slot : slots) {
      if (slot.duration.load(std::memory_order_relaxed) == 0) continue;
      if (slot.busy.exchange(true, std::memory_order_acquire)) continue;
      if (slot.duration.load(std::memory_order_relaxed) != 0)
        out.push_back(slot.record);
      slot.busy.store(false, std::memory_order_release);
    }
  };
  drain(slow_banks_[0]);
  drain(slow_banks_[1]);
  drain(error_ring_);
  return out;
}

}  // namespace mev::obs
