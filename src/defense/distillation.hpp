// Defensive distillation (§II-C.2, Papernot et al. 2016):
//  1. train a teacher at softmax temperature T on hard labels;
//  2. label the training set with the teacher's temperature-T soft
//     probabilities;
//  3. train a student (the deployed model) on the soft labels at the same
//     temperature T;
//  4. deploy the student at T = 1, which sharpens the softmax and shrinks
//     input gradients, raising the attacker's required distortion.
#pragma once

#include <memory>

#include "nn/network.hpp"
#include "nn/trainer.hpp"

namespace mev::defense {

struct DistillationConfig {
  nn::MlpConfig teacher_architecture;
  nn::MlpConfig student_architecture;
  float temperature = 50.0f;  // the paper evaluates T = 50
  nn::TrainConfig teacher_training;
  nn::TrainConfig student_training;
};

struct DistillationResult {
  std::shared_ptr<nn::Network> teacher;
  std::shared_ptr<nn::Network> student;  // the defended model (use at T=1)
};

/// Runs the full teacher -> soft labels -> student pipeline.
DistillationResult defensive_distillation(
    const nn::LabeledData& train_data, const DistillationConfig& config,
    const nn::LabeledData* validation = nullptr);

}  // namespace mev::defense
