// Add-only Jacobian-based Saliency Map Attack (JSMA), the paper's attack
// (§II-B.1, after Papernot et al. 2016).
//
// Per iteration, the saliency map over features j for target class t is
//
//   S(X, t)[j] = 0                       if dF_t/dX_j < 0 or
//                                           sum_{i != t} dF_i/dX_j > 0
//              = dF_t/dX_j * |sum_{i != t} dF_i/dX_j|   otherwise
//
// and the attack perturbs the admissible feature with maximal saliency by
// theta (clamped to 1). For the 2-class softmax used here dF_0/dX = -dF_1/dX,
// so this reduces to "pick the feature with the largest positive gradient
// into the clean class", exactly the paper's description of Eq. 1.
//
// theta  - perturbation magnitude added to each selected feature;
// gamma  - maximum fraction of features that may be perturbed, so the
//          feature budget is round(gamma * M) (gamma = 0.005 with M = 491
//          is the paper's "adding 2 features").
#pragma once

#include <span>

#include "attack/attack.hpp"

namespace mev::attack {

struct JsmaConfig {
  float theta = 0.1f;
  float gamma = 0.025f;
  int target_class = 0;  // clean
  /// Stop perturbing a sample once the craft model classifies it as the
  /// target class (true, default) or always spend the full budget (false).
  bool early_stop = true;
  /// Allow the same feature to be selected again in a later iteration
  /// (re-perturbation). The paper's add-only variant perturbs each feature
  /// at most once; keep false to match.
  bool allow_repeat = false;
};

class Jsma final : public EvasionAttack {
 public:
  explicit Jsma(JsmaConfig config);

  /// Session-based crafting. The sample batch is split into contiguous
  /// shards crafted in parallel (OpenMP), one InferenceSession per shard
  /// against the shared read-only network. Every per-sample quantity is
  /// computed row-wise, so the outcome is identical for any shard count.
  AttackResult craft(const nn::Network& model,
                     const math::Matrix& x) const override;
  std::string name() const override { return "jsma"; }

  const JsmaConfig& config() const noexcept { return config_; }

  /// The per-sample feature budget for a given input width.
  std::size_t feature_budget(std::size_t num_features) const noexcept;

  /// Computes the saliency map for a batch given per-class input
  /// gradients; exposed for tests and for interpretability tooling.
  /// grads[c] is batch x features (dF_c/dX). Inadmissible features get
  /// saliency 0. Accepts the span returned by
  /// InferenceSession::input_gradients_all directly (a std::vector of
  /// matrices converts implicitly).
  static math::Matrix saliency_map(std::span<const math::Matrix> grads,
                                   int target_class);

 private:
  JsmaConfig config_;
};

}  // namespace mev::attack
