// Ensemble defense — the combination the paper's §III-C explicitly
// suggests trying: "The results suggest we may consider ensemble
// adversarial training and dimension reduction."
//
// Members vote; two policies:
//  * kMajority — standard majority vote (ties break to malware);
//  * kAnyMalware — flag if ANY member says malware (maximum recall,
//    appropriate when members have complementary blind spots, e.g. an
//    adversarially-trained model plus a PCA-projected model).
#pragma once

#include <memory>
#include <vector>

#include "defense/classifier.hpp"

namespace mev::defense {

enum class VotePolicy { kMajority, kAnyMalware };

class EnsembleClassifier final : public Classifier {
 public:
  EnsembleClassifier(std::vector<std::shared_ptr<Classifier>> members,
                     VotePolicy policy = VotePolicy::kMajority);

  std::vector<int> classify(const math::Matrix& features) override;

  /// Mean of the members' malware confidences.
  std::vector<double> malware_confidence(const math::Matrix& features) override;

  std::string name() const override;

  std::size_t size() const noexcept { return members_.size(); }
  VotePolicy policy() const noexcept { return policy_; }

 private:
  std::vector<std::shared_ptr<Classifier>> members_;
  VotePolicy policy_;
};

}  // namespace mev::defense
