#include "nn/activation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace mev::nn {
namespace {

math::Matrix sample_inputs() {
  return math::Matrix{{-2.0f, -0.5f, 0.0f, 0.5f, 2.0f}};
}

TEST(Activation, ReluValues) {
  math::Matrix z = sample_inputs();
  apply_activation(Activation::kRelu, z);
  EXPECT_EQ(z(0, 0), 0.0f);
  EXPECT_EQ(z(0, 2), 0.0f);
  EXPECT_EQ(z(0, 4), 2.0f);
}

TEST(Activation, SigmoidValues) {
  math::Matrix z = sample_inputs();
  apply_activation(Activation::kSigmoid, z);
  EXPECT_NEAR(z(0, 2), 0.5f, 1e-6);
  EXPECT_NEAR(z(0, 4), 1.0f / (1.0f + std::exp(-2.0f)), 1e-6);
}

TEST(Activation, TanhValues) {
  math::Matrix z = sample_inputs();
  apply_activation(Activation::kTanh, z);
  EXPECT_NEAR(z(0, 2), 0.0f, 1e-6);
  EXPECT_NEAR(z(0, 4), std::tanh(2.0f), 1e-6);
}

TEST(Activation, LeakyReluValues) {
  math::Matrix z = sample_inputs();
  apply_activation(Activation::kLeakyRelu, z);
  EXPECT_NEAR(z(0, 0), -0.02f, 1e-6);
  EXPECT_EQ(z(0, 4), 2.0f);
}

TEST(Activation, IdentityIsNoop) {
  math::Matrix z = sample_inputs();
  const math::Matrix original = z;
  apply_activation(Activation::kIdentity, z);
  EXPECT_EQ(z, original);
}

class ActivationGradient : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationGradient, MatchesFiniteDifference) {
  const Activation act = GetParam();
  // Offset away from 0 so finite differences never straddle the
  // relu-family kink.
  math::Matrix z = sample_inputs();
  for (std::size_t i = 0; i < z.size(); ++i) z.data()[i] += 0.013f;
  math::Matrix a = z;
  apply_activation(act, a);
  math::Matrix grad(1, z.cols(), 1.0f);  // upstream gradient of ones
  apply_activation_grad(act, z, a, grad);

  const float eps = 1e-3f;
  for (std::size_t j = 0; j < z.cols(); ++j) {
    math::Matrix zp = z, zm = z;
    zp(0, j) += eps;
    zm(0, j) -= eps;
    apply_activation(act, zp);
    apply_activation(act, zm);
    const float fd = (zp(0, j) - zm(0, j)) / (2 * eps);
    EXPECT_NEAR(grad(0, j), fd, 5e-3) << "feature " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActivationGradient,
                         ::testing::Values(Activation::kIdentity,
                                           Activation::kSigmoid,
                                           Activation::kTanh,
                                           Activation::kLeakyRelu));

TEST(Activation, GradShapeMismatchThrows) {
  const math::Matrix z = sample_inputs();
  math::Matrix a = z;
  math::Matrix grad(2, z.cols(), 1.0f);
  EXPECT_THROW(apply_activation_grad(Activation::kRelu, z, a, grad),
               std::invalid_argument);
}

TEST(Activation, StringRoundTrip) {
  for (Activation act :
       {Activation::kIdentity, Activation::kRelu, Activation::kSigmoid,
        Activation::kTanh, Activation::kLeakyRelu}) {
    EXPECT_EQ(activation_from_string(to_string(act)), act);
  }
  EXPECT_THROW(activation_from_string("swish"), std::invalid_argument);
}

}  // namespace
}  // namespace mev::nn
