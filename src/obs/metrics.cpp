#include "obs/metrics.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "runtime/clock.hpp"

namespace mev::obs {

std::string prometheus_escape_help(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '\n')
      out += "\\n";
    else
      out += c;
  }
  return out;
}

std::string prometheus_escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '"')
      out += "\\\"";
    else if (c == '\n')
      out += "\\n";
    else
      out += c;
  }
  return out;
}

namespace {

/// Deterministic decimal rendering: integers print without a fraction,
/// everything else as the shortest round-trip form.
std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  if (res.ec == std::errc()) return std::string(buf, res.ptr);
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string prometheus_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return format_number(v);
}

#if MEV_OBS_ENABLED

namespace {

/// JSON has no NaN/Infinity literals; non-finite gauge values snapshot as
/// null rather than producing an unparseable document.
std::string json_number(double v) {
  return std::isfinite(v) ? format_number(v) : "null";
}

const char* kind_name(detail::MetricKind kind) {
  switch (kind) {
    case detail::MetricKind::kCounter: return "counter";
    case detail::MetricKind::kGauge: return "gauge";
    case detail::MetricKind::kHistogram: return "histogram";
    case detail::MetricKind::kWindowedHistogram: return "windowed_histogram";
  }
  return "?";
}

/// The windows exported next to a windowed histogram's lifetime series.
constexpr struct {
  const char* label;
  std::uint64_t window_us;
} kExportWindows[] = {{"1m", 60'000'000}, {"5m", 300'000'000}};

/// Prometheus metric names allow [a-zA-Z0-9_:]; map our dotted
/// `mev.<layer>.<op>` convention (and any other byte) onto '_'.
std::string sanitize_prometheus(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

/// `{key="value",...}` suffix for a labeled sample, "" when unlabeled.
/// `extra` appends one more pair (histogram `le`) without copying the set.
std::string render_labels(const Labels& labels, const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += sanitize_prometheus(key) + "=\"" +
           prometheus_escape_label_value(value) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

std::string escape_json(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

detail::Metric& MetricsRegistry::find_or_create(std::string_view name,
                                                std::string_view help,
                                                detail::MetricKind kind,
                                                const Labels& labels) {
  if (name.empty())
    throw std::invalid_argument("MetricsRegistry: empty metric name");
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& metric : metrics_) {
    if (metric->name != name) continue;
    // One TYPE per name: every label set under a name shares a kind.
    if (metric->kind != kind)
      throw std::invalid_argument(
          "MetricsRegistry: metric '" + std::string(name) +
          "' already registered as a " + kind_name(metric->kind) +
          ", requested as a " + kind_name(kind));
    if (metric->labels == labels) return *metric;
  }
  auto metric = std::make_unique<detail::Metric>();
  metric->name = std::string(name);
  metric->help = std::string(help);
  metric->labels = labels;
  metric->kind = kind;
  metrics_.push_back(std::move(metric));
  return *metrics_.back();
}

Counter MetricsRegistry::counter(std::string_view name, std::string_view help,
                                 Labels labels) {
  return Counter(
      &find_or_create(name, help, detail::MetricKind::kCounter, labels));
}

Gauge MetricsRegistry::gauge(std::string_view name, std::string_view help,
                             Labels labels) {
  return Gauge(&find_or_create(name, help, detail::MetricKind::kGauge,
                               labels));
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::string_view help, Labels labels) {
  return Histogram(
      &find_or_create(name, help, detail::MetricKind::kHistogram, labels));
}

WindowedHistogram MetricsRegistry::windowed_histogram(std::string_view name,
                                                      std::string_view help,
                                                      runtime::Clock* clock,
                                                      WindowConfig window,
                                                      Labels labels) {
  detail::Metric& cell = find_or_create(
      name, help, detail::MetricKind::kWindowedHistogram, labels);
  {
    // First registration wires the ring (the geometry is part of the
    // cell's identity); EVERY registration re-wires the clock, latest
    // wins. The registry cell can outlive any one registrant, so a
    // service that injected a short-lived FakeClock must be superseded
    // by the next registrant before anyone dereferences the stale
    // pointer — re-registering is what makes the cell safe again.
    std::lock_guard<std::mutex> lock(cell.histogram_mutex);
    if (cell.window == nullptr)
      cell.window = std::make_unique<SlidingHistogram>(window);
    cell.clock.store(
        clock != nullptr ? clock : &runtime::SystemClock::instance(),
        std::memory_order_release);
  }
  return WindowedHistogram(&cell);
}

void WindowedHistogram::record(std::uint64_t v) noexcept {
  if (cell_ == nullptr) return;
  const std::uint64_t now_us =
      cell_->clock.load(std::memory_order_acquire)->now_us();
  {
    std::lock_guard<std::mutex> lock(cell_->histogram_mutex);
    cell_->histogram.record(v);
  }
  cell_->window->record(now_us, v);
}

Log2Histogram WindowedHistogram::lifetime() const {
  if (cell_ == nullptr) return Log2Histogram{};
  std::lock_guard<std::mutex> lock(cell_->histogram_mutex);
  return cell_->histogram;
}

Log2Histogram WindowedHistogram::windowed(std::uint64_t window_us) const {
  if (cell_ == nullptr) return Log2Histogram{};
  return cell_->window->merged(
      cell_->clock.load(std::memory_order_acquire)->now_us(), window_us);
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return metrics_.size();
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  std::string out;
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> emitted_headers;  // names whose HELP/TYPE are out
  for (const auto& metric : metrics_) {
    const std::string name = sanitize_prometheus(metric->name);
    const std::string labels = render_labels(metric->labels);
    // HELP/TYPE once per name, even when several label sets share it.
    bool header_done = false;
    for (const auto& seen : emitted_headers) header_done |= seen == name;
    if (!header_done) {
      emitted_headers.push_back(name);
      if (!metric->help.empty())
        out += "# HELP " + name + " " + prometheus_escape_help(metric->help) +
               "\n";
      // A windowed histogram's lifetime family IS a histogram to scrapers.
      const char* type =
          metric->kind == detail::MetricKind::kWindowedHistogram
              ? "histogram"
              : kind_name(metric->kind);
      out += "# TYPE " + name + " " + std::string(type) + "\n";
    }
    switch (metric->kind) {
      case detail::MetricKind::kCounter:
        out += name + labels + " " +
               std::to_string(
                   metric->counter.load(std::memory_order_relaxed)) +
               "\n";
        break;
      case detail::MetricKind::kGauge:
        out += name + labels + " " +
               prometheus_number(
                   metric->gauge.load(std::memory_order_relaxed)) +
               "\n";
        break;
      case detail::MetricKind::kHistogram:
      case detail::MetricKind::kWindowedHistogram: {
        Log2Histogram h;
        {
          std::lock_guard<std::mutex> hist_lock(metric->histogram_mutex);
          h = metric->histogram;
        }
        // Cumulative le buckets up to the last occupied one, then +Inf.
        std::size_t last = 0;
        for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i)
          if (h.bucket_count(i) > 0) last = i;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i <= last && h.count() > 0; ++i) {
          cumulative += h.bucket_count(i);
          out += name + "_bucket" +
                 render_labels(metric->labels,
                               "le=\"" +
                                   prometheus_escape_label_value(std::to_string(
                                       Log2Histogram::bucket_upper_bound(i))) +
                                   "\"") +
                 " " + std::to_string(cumulative) + "\n";
        }
        out += name + "_bucket" +
               render_labels(metric->labels, "le=\"+Inf\"") + " " +
               std::to_string(h.count()) + "\n";
        out += name + "_sum" + labels + " " + prometheus_number(h.sum()) +
               "\n";
        out += name + "_count" + labels + " " + std::to_string(h.count()) +
               "\n";
        if (metric->kind != detail::MetricKind::kWindowedHistogram) break;
        // Windowed digests next to the lifetime family: a gauge family
        // `<name>_window{window=...,stat=...}`, evaluated at scrape time.
        const std::string wname = name + "_window";
        bool wheader_done = false;
        for (const auto& seen : emitted_headers)
          wheader_done |= seen == wname;
        if (!wheader_done) {
          emitted_headers.push_back(wname);
          out += "# HELP " + wname +
                 " windowed p50/p95/p99/count of " + name + "\n";
          out += "# TYPE " + wname + " gauge\n";
        }
        const std::uint64_t now_us =
            metric->clock.load(std::memory_order_acquire)->now_us();
        for (const auto& w : kExportWindows) {
          const Log2Histogram merged =
              metric->window->merged(now_us, w.window_us);
          const LatencySummary s = summarize(merged);
          const auto sample = [&](const char* stat, double v) {
            out += wname +
                   render_labels(metric->labels,
                                 std::string("window=\"") + w.label +
                                     "\",stat=\"" + stat + "\"") +
                   " " + prometheus_number(v) + "\n";
          };
          sample("p50", s.p50);
          sample("p95", s.p95);
          sample("p99", s.p99);
          sample("count", static_cast<double>(s.count));
        }
        break;
      }
    }
  }
  os << out;
}

std::string MetricsRegistry::prometheus() const {
  std::ostringstream os;
  write_prometheus(os);
  return os.str();
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::string counters, gauges, histograms;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& metric : metrics_) {
    // Built with += (not operator+ on a temporary): GCC 12's -Werror
    // build trips a bogus -Wrestrict on the rvalue overload (PR105651).
    // Labeled cells key as `name{key=value,...}` so every cell stays
    // addressable in the snapshot.
    std::string key = "\"";
    key += escape_json(metric->name);
    if (!metric->labels.empty()) {
      key += '{';
      bool first = true;
      for (const auto& [k, v] : metric->labels) {
        if (!first) key += ',';
        first = false;
        key += escape_json(k);
        key += '=';
        key += escape_json(v);
      }
      key += '}';
    }
    key += "\":";
    switch (metric->kind) {
      case detail::MetricKind::kCounter:
        if (!counters.empty()) counters += ',';
        counters += key + std::to_string(
                              metric->counter.load(std::memory_order_relaxed));
        break;
      case detail::MetricKind::kGauge:
        if (!gauges.empty()) gauges += ',';
        gauges +=
            key + json_number(metric->gauge.load(std::memory_order_relaxed));
        break;
      case detail::MetricKind::kHistogram:
      case detail::MetricKind::kWindowedHistogram: {
        Log2Histogram h;
        {
          std::lock_guard<std::mutex> hist_lock(metric->histogram_mutex);
          h = metric->histogram;
        }
        const LatencySummary s = summarize(h);
        if (!histograms.empty()) histograms += ',';
        histograms += key + "{\"count\":" + std::to_string(s.count) +
                      ",\"mean\":" + json_number(s.mean) +
                      ",\"min\":" + std::to_string(h.min()) +
                      ",\"max\":" + std::to_string(s.max) +
                      ",\"p50\":" + json_number(s.p50) +
                      ",\"p95\":" + json_number(s.p95) +
                      ",\"p99\":" + json_number(s.p99);
        if (metric->kind == detail::MetricKind::kWindowedHistogram) {
          const std::uint64_t now_us =
              metric->clock.load(std::memory_order_acquire)->now_us();
          for (const auto& w : kExportWindows) {
            const LatencySummary ws =
                summarize(metric->window->merged(now_us, w.window_us));
            histograms += std::string(",\"window_") + w.label +
                          "\":{\"count\":" + std::to_string(ws.count) +
                          ",\"p50\":" + json_number(ws.p50) +
                          ",\"p95\":" + json_number(ws.p95) +
                          ",\"p99\":" + json_number(ws.p99) + "}";
          }
        }
        histograms += "}";
        break;
      }
    }
  }
  os << "{\"counters\":{" << counters << "},\"gauges\":{" << gauges
     << "},\"histograms\":{" << histograms << "}}\n";
}

std::string MetricsRegistry::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

#else  // MEV_OBS_ENABLED == 0

void MetricsRegistry::write_prometheus(std::ostream&) const {}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\"counters\":{},\"gauges\":{},\"histograms\":{}}\n";
}

#endif  // MEV_OBS_ENABLED

}  // namespace mev::obs
