// Slot-based completion path for the scoring service (DESIGN.md §8).
//
// The old path heap-allocated a std::promise/std::future pair per request
// — an allocation, a mutex and a condition variable on every submission.
// This replaces it with a preallocated CompletionArena: a submission
// acquires a slot (one lock-free freelist pop), the scoring worker writes
// the result into the slot and flips one atomic, and the ScoreFuture
// handle waits on that atomic directly (std::atomic::wait — a futex on
// Linux). Slots are recycled through the freelist, so the steady state
// performs no allocation and reuses each slot's ScoreResult buffers.
//
// Lifecycle of a slot (state lives in one atomic, tagged with the slot's
// generation so a recycled slot can never satisfy a stale handle):
//
//   acquire()            pending   — owned by one handle + one resolver
//   complete()           done      — result readable, waiters woken
//   ScoreFuture::get()   released  — back on the freelist, generation+1
//
// A handle dropped before get() marks the slot abandoned; whichever side
// arrives second (completer or handle destructor) releases the slot, so
// dropping futures never leaks slots or blocks a worker.
//
// The arena grows by fixed-size blocks when the freelist runs dry
// (amortized: only when the number of concurrently outstanding results
// exceeds every previous high-water mark) and never shrinks or moves a
// slot — handles hold stable pointers into it. Thread-safe throughout.
#pragma once

#include <atomic>
#include <array>
#include <chrono>
#include <cstdint>
#include <exception>
#include <future>
#include <memory>
#include <mutex>

#include "serve/request.hpp"

namespace mev::serve {

class CompletionArena {
 public:
  /// `block_slots` is the allocation granularity (and initial capacity).
  explicit CompletionArena(std::size_t block_slots = 256);
  ~CompletionArena();

  CompletionArena(const CompletionArena&) = delete;
  CompletionArena& operator=(const CompletionArena&) = delete;

  /// Takes a free slot (growing if needed). The ticket must be resolved
  /// exactly once via complete()/complete_error() and consumed exactly
  /// once via take()/abandon() (ScoreFuture does the latter).
  CompletionTicket acquire();

  /// Publishes the result and wakes waiters. If the handle was already
  /// abandoned, the result is dropped and the slot recycled here.
  void complete(CompletionTicket ticket, ScoreResult&& result);

  /// Publishes an exception instead (take() rethrows it).
  void complete_error(CompletionTicket ticket, std::exception_ptr error);

  /// True once the ticket has been resolved.
  bool ready(CompletionTicket ticket) const noexcept;

  /// Blocks until resolved.
  void wait(CompletionTicket ticket) const noexcept;

  /// Bounded wait; true when resolved before the timeout.
  bool wait_for_ms(CompletionTicket ticket, std::uint64_t timeout_ms) const;

  /// Waits, then moves the result out and releases the slot. Rethrows a
  /// complete_error() exception. Call at most once per ticket.
  ScoreResult take(CompletionTicket ticket);

  /// Detaches the handle without consuming the result. Safe at any point
  /// after acquire(); the slot is recycled by whichever of
  /// abandon()/complete() runs second.
  void abandon(CompletionTicket ticket) noexcept;

  /// Slots allocated (capacity) and currently outstanding (approximate).
  std::size_t capacity() const noexcept;
  std::size_t outstanding() const noexcept;

 private:
  enum : std::uint32_t { kPending = 0, kDone = 1, kAbandoned = 2 };

  struct Slot {
    /// (generation << 32) | lifecycle-state. All hand-offs go through
    /// this one atomic; waiters park on it with std::atomic::wait.
    std::atomic<std::uint64_t> state{0};
    ScoreResult result;
    std::exception_ptr error;
    /// Freelist link, packed like free_head_'s low word (index+1, 0 =
    /// end). Atomic so a racing pop's speculative read of a just-reused
    /// node is a benign relaxed load, not a data race.
    std::atomic<std::uint32_t> next_free{0};
  };

  static constexpr std::uint64_t pack(std::uint32_t generation,
                                      std::uint32_t s) noexcept {
    return (static_cast<std::uint64_t>(generation) << 32) | s;
  }

  // 1M slots ≫ any realistic number of concurrently outstanding results
  // (the queue admits at most max_queue_rows rows at a time; slots only
  // accumulate when callers hold unconsumed futures).
  static constexpr std::size_t kMaxBlocks = 4096;

  Slot& slot(std::uint32_t index) const noexcept;
  void release(std::uint32_t index, std::uint32_t generation) noexcept;
  void grow();

  std::size_t block_slots_;
  /// Treiber stack of free slot indices. Packed (aba_tag << 32 | index+1);
  /// 0 = empty. The tag makes pop's CAS ABA-safe.
  std::atomic<std::uint64_t> free_head_{0};
  std::atomic<std::size_t> allocated_{0};
  std::atomic<std::size_t> outstanding_{0};
  /// Blocks are published with a release store and never freed or moved,
  /// so slot() is a wait-free acquire load + index.
  std::array<std::atomic<Slot*>, kMaxBlocks> blocks_{};
  std::mutex grow_mutex_;
};

/// One-shot handle to a pending ScoreResult, backed by an arena slot
/// instead of std::future shared state. Move-only; get() consumes.
/// Keeps the arena alive (shared_ptr), so a future outliving its
/// ScoringService — e.g. taken just before the service is destroyed and
/// drained — remains safe to wait on.
class ScoreFuture {
 public:
  ScoreFuture() = default;
  ScoreFuture(std::shared_ptr<CompletionArena> arena, CompletionTicket ticket)
      : arena_(std::move(arena)), ticket_(ticket) {}

  ~ScoreFuture() {
    if (arena_ != nullptr) arena_->abandon(ticket_);
  }

  ScoreFuture(ScoreFuture&& other) noexcept { *this = std::move(other); }
  ScoreFuture& operator=(ScoreFuture&& other) noexcept {
    if (this != &other) {
      if (arena_ != nullptr) arena_->abandon(ticket_);
      arena_ = std::move(other.arena_);
      ticket_ = other.ticket_;
      other.arena_.reset();
    }
    return *this;
  }

  ScoreFuture(const ScoreFuture&) = delete;
  ScoreFuture& operator=(const ScoreFuture&) = delete;

  bool valid() const noexcept { return arena_ != nullptr; }

  void wait() const {
    if (arena_ == nullptr) throw std::future_error(std::future_errc::no_state);
    arena_->wait(ticket_);
  }

  /// std::future-compatible probe (ready/timeout; never deferred).
  template <typename Rep, typename Period>
  std::future_status wait_for(
      std::chrono::duration<Rep, Period> timeout) const {
    if (arena_ == nullptr) throw std::future_error(std::future_errc::no_state);
    const auto ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(timeout);
    if (ms.count() <= 0)
      return arena_->ready(ticket_) ? std::future_status::ready
                                    : std::future_status::timeout;
    return arena_->wait_for_ms(ticket_,
                               static_cast<std::uint64_t>(ms.count()))
               ? std::future_status::ready
               : std::future_status::timeout;
  }

  /// Waits, returns the result (or rethrows), and invalidates the handle.
  ScoreResult get() {
    if (arena_ == nullptr) throw std::future_error(std::future_errc::no_state);
    auto arena = std::move(arena_);
    arena_.reset();
    return arena->take(ticket_);
  }

 private:
  std::shared_ptr<CompletionArena> arena_;
  CompletionTicket ticket_;
};

}  // namespace mev::serve
