#include "eval/roc.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mev::eval {
namespace {

TEST(Roc, PerfectSeparationGivesAucOne) {
  const std::vector<int> labels{0, 0, 1, 1};
  const std::vector<double> scores{0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(auc(labels, scores), 1.0);
}

TEST(Roc, ReversedScoresGiveAucZero) {
  const std::vector<int> labels{0, 0, 1, 1};
  const std::vector<double> scores{0.9, 0.8, 0.2, 0.1};
  EXPECT_DOUBLE_EQ(auc(labels, scores), 0.0);
}

TEST(Roc, RandomScoresGiveHalf) {
  // Identical scores: the single step covers everything -> AUC 0.5.
  const std::vector<int> labels{0, 1, 0, 1};
  const std::vector<double> scores{0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(auc(labels, scores), 0.5);
}

TEST(Roc, KnownPartialOrdering) {
  // One inversion among 2x2 pairs: AUC = 3/4.
  const std::vector<int> labels{0, 1, 0, 1};
  const std::vector<double> scores{0.1, 0.4, 0.5, 0.9};
  EXPECT_DOUBLE_EQ(auc(labels, scores), 0.75);
}

TEST(Roc, CurveEndpointsAndMonotonicity) {
  const std::vector<int> labels{0, 1, 0, 1, 1, 0};
  const std::vector<double> scores{0.2, 0.9, 0.4, 0.6, 0.3, 0.1};
  const auto points = roc_curve(labels, scores);
  EXPECT_DOUBLE_EQ(points.front().tpr, 0.0);
  EXPECT_DOUBLE_EQ(points.front().fpr, 0.0);
  EXPECT_DOUBLE_EQ(points.back().tpr, 1.0);
  EXPECT_DOUBLE_EQ(points.back().fpr, 1.0);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].tpr, points[i - 1].tpr);
    EXPECT_GE(points[i].fpr, points[i - 1].fpr);
    EXPECT_LE(points[i].threshold, points[i - 1].threshold);
  }
}

TEST(Roc, TiedScoresCollapseToOnePoint) {
  const std::vector<int> labels{0, 1, 1};
  const std::vector<double> scores{0.5, 0.5, 0.9};
  const auto points = roc_curve(labels, scores);
  // endpoints + 0.9 step + the tied 0.5 step.
  EXPECT_EQ(points.size(), 3u);
}

TEST(Roc, YoudenThresholdSeparatesPerfectData) {
  const std::vector<int> labels{0, 0, 1, 1};
  const std::vector<double> scores{0.1, 0.2, 0.8, 0.9};
  const double threshold = best_youden_threshold(labels, scores);
  // Classifying score >= threshold as malware must be perfect.
  for (std::size_t i = 0; i < labels.size(); ++i)
    EXPECT_EQ(scores[i] >= threshold, labels[i] == 1);
}

TEST(Roc, Validation) {
  EXPECT_THROW(auc({0, 1}, {0.5}), std::invalid_argument);
  EXPECT_THROW(auc({0, 0}, {0.5, 0.6}), std::invalid_argument);  // one class
  EXPECT_THROW(auc({0, 2}, {0.5, 0.6}), std::invalid_argument);  // bad label
}

}  // namespace
}  // namespace mev::eval
