file(REMOVE_RECURSE
  "CMakeFiles/blackbox_framework.dir/blackbox_framework.cpp.o"
  "CMakeFiles/blackbox_framework.dir/blackbox_framework.cpp.o.d"
  "blackbox_framework"
  "blackbox_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blackbox_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
