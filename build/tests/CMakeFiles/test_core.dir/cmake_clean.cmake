file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_blackbox.cpp.o"
  "CMakeFiles/test_core.dir/core/test_blackbox.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_detector.cpp.o"
  "CMakeFiles/test_core.dir/core/test_detector.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_greybox.cpp.o"
  "CMakeFiles/test_core.dir/core/test_greybox.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_integration.cpp.o"
  "CMakeFiles/test_core.dir/core/test_integration.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_persistence.cpp.o"
  "CMakeFiles/test_core.dir/core/test_persistence.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_security_eval.cpp.o"
  "CMakeFiles/test_core.dir/core/test_security_eval.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
