#include "core/persistence.hpp"

#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "features/transform.hpp"
#include "runtime/atomic_file.hpp"

namespace mev::core {

namespace {

constexpr std::uint32_t kNetworkMagic = 0x4d455644;    // "MEVD"
constexpr std::uint32_t kTransformMagic = 0x4d455654;  // "MEVT"
constexpr std::uint32_t kCheckpointMagic = 0x4d455643; // "MEVC"
constexpr std::uint32_t kPersistVersion = 1;
// Checkpoint payload versions. v2 appended the per-round phase durations
// (label_us/train_us/augment_us) to each round-stats record; v1 files
// still load, with durations defaulting to zero.
constexpr std::uint32_t kCheckpointVersionMin = 1;
constexpr std::uint32_t kCheckpointVersion = 2;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is, const char* what) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is)
    throw std::runtime_error(std::string("load checkpoint: truncated ") +
                             what);
  return v;
}

void write_matrix(std::ostream& os, const math::Matrix& m) {
  write_pod<std::uint64_t>(os, m.rows());
  write_pod<std::uint64_t>(os, m.cols());
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(m.size() * sizeof(float)));
}

math::Matrix read_matrix(std::istream& is, const char* what) {
  const auto rows = read_pod<std::uint64_t>(is, what);
  const auto cols = read_pod<std::uint64_t>(is, what);
  if (rows > (1u << 24) || cols > (1u << 24))
    throw std::runtime_error(
        std::string("load checkpoint: implausible shape for ") + what);
  math::Matrix m(static_cast<std::size_t>(rows),
                 static_cast<std::size_t>(cols));
  is.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(float)));
  if (!is)
    throw std::runtime_error(std::string("load checkpoint: truncated ") +
                             what);
  return m;
}

void write_round_stats(std::ostream& os, const BlackBoxRoundStats& s) {
  write_pod<std::uint64_t>(os, s.dataset_rows);
  write_pod<std::uint64_t>(os, s.oracle_queries);
  write_pod<double>(os, s.oracle_agreement);
  write_pod<std::uint64_t>(os, s.resilience.calls);
  write_pod<std::uint64_t>(os, s.resilience.attempts);
  write_pod<std::uint64_t>(os, s.resilience.retries);
  write_pod<std::uint64_t>(os, s.resilience.timeouts);
  write_pod<std::uint64_t>(os, s.resilience.garbled_batches);
  write_pod<std::uint64_t>(os, s.resilience.breaker_trips);
  write_pod<std::uint64_t>(os, s.resilience.bisections);
  write_pod<std::uint64_t>(os, s.resilience.failed_queries);
  write_pod<std::uint64_t>(os, s.resilience.backoff_ms);
  write_pod<std::uint64_t>(os, s.cache_hits);
  write_pod<std::uint64_t>(os, s.label_us);
  write_pod<std::uint64_t>(os, s.train_us);
  write_pod<std::uint64_t>(os, s.augment_us);
}

BlackBoxRoundStats read_round_stats(std::istream& is,
                                    std::uint32_t version) {
  BlackBoxRoundStats s;
  s.dataset_rows = read_pod<std::uint64_t>(is, "round stats");
  s.oracle_queries = read_pod<std::uint64_t>(is, "round stats");
  s.oracle_agreement = read_pod<double>(is, "round stats");
  s.resilience.calls = read_pod<std::uint64_t>(is, "round stats");
  s.resilience.attempts = read_pod<std::uint64_t>(is, "round stats");
  s.resilience.retries = read_pod<std::uint64_t>(is, "round stats");
  s.resilience.timeouts = read_pod<std::uint64_t>(is, "round stats");
  s.resilience.garbled_batches = read_pod<std::uint64_t>(is, "round stats");
  s.resilience.breaker_trips = read_pod<std::uint64_t>(is, "round stats");
  s.resilience.bisections = read_pod<std::uint64_t>(is, "round stats");
  s.resilience.failed_queries = read_pod<std::uint64_t>(is, "round stats");
  s.resilience.backoff_ms = read_pod<std::uint64_t>(is, "round stats");
  s.cache_hits = read_pod<std::uint64_t>(is, "round stats");
  if (version >= 2) {
    s.label_us = read_pod<std::uint64_t>(is, "round stats");
    s.train_us = read_pod<std::uint64_t>(is, "round stats");
    s.augment_us = read_pod<std::uint64_t>(is, "round stats");
  }
  return s;
}

}  // namespace

void save_detector(const MalwareDetector& detector,
                   const std::string& path_prefix) {
  // Network (binary payload in a checksummed envelope).
  std::ostringstream net_payload(std::ios::binary);
  nn::save_network(
      const_cast<MalwareDetector&>(detector).network(),  // read-only use
      net_payload);
  runtime::write_envelope_atomic(path_prefix + ".net", kNetworkMagic,
                                 kPersistVersion, net_payload.str());

  // Transform (text payload, tagged by type, same envelope).
  std::ostringstream ts;
  const features::FeatureTransform& transform =
      detector.pipeline().transform();
  if (const auto* count =
          dynamic_cast<const features::CountTransform*>(&transform)) {
    ts << "count\n";
    count->save(ts);
  } else if (transform.name() == "binary") {
    ts << "binary\n" << transform.dim() << "\n";
  } else {
    throw std::runtime_error("save_detector: unsupported transform " +
                             transform.name());
  }
  if (!ts) throw std::runtime_error("save_detector: serialization failure");
  runtime::write_envelope_atomic(path_prefix + ".transform", kTransformMagic,
                                 kPersistVersion, ts.str());
}

std::unique_ptr<MalwareDetector> load_detector(const std::string& path_prefix,
                                               const data::ApiVocab& vocab) {
  std::istringstream net_payload(
      runtime::read_envelope(path_prefix + ".net", kNetworkMagic,
                             kPersistVersion, "detector network"),
      std::ios::binary);
  auto network =
      std::make_shared<nn::Network>(nn::load_network(net_payload));

  std::istringstream ts(runtime::read_envelope(
      path_prefix + ".transform", kTransformMagic, kPersistVersion,
      "detector transform"));
  std::string kind;
  if (!(ts >> kind)) throw std::runtime_error("load_detector: empty transform");
  std::unique_ptr<features::FeatureTransform> transform;
  if (kind == "count") {
    transform = std::make_unique<features::CountTransform>(
        features::CountTransform::load(ts));
  } else if (kind == "binary") {
    std::size_t dim = 0;
    if (!(ts >> dim))
      throw std::runtime_error("load_detector: bad binary transform");
    transform = std::make_unique<features::BinaryTransform>(dim);
  } else {
    throw std::runtime_error("load_detector: unknown transform " + kind);
  }
  return std::make_unique<MalwareDetector>(
      features::FeaturePipeline(vocab, std::move(transform)),
      std::move(network));
}

void save_blackbox_checkpoint(const BlackBoxCheckpoint& checkpoint,
                              const std::string& path) {
  std::ostringstream os(std::ios::binary);
  write_pod<std::uint64_t>(os, checkpoint.config_fingerprint);
  write_pod<std::uint64_t>(os, checkpoint.next_round);
  write_pod<std::uint8_t>(os, checkpoint.finished ? 1 : 0);
  write_pod<std::uint64_t>(os, checkpoint.total_queries);
  write_pod<std::uint64_t>(os, checkpoint.rounds.size());
  for (const auto& round : checkpoint.rounds) write_round_stats(os, round);
  write_matrix(os, checkpoint.counts);
  write_matrix(os, checkpoint.cache_rows);
  write_pod<std::uint64_t>(os, checkpoint.cache_labels.size());
  for (int label : checkpoint.cache_labels)
    write_pod<std::int32_t>(os, label);
  nn::save_network(checkpoint.substitute, os);
  // The text-format transform goes last: its formatted reads stop at the
  // final value and would desynchronize any binary field written after it.
  checkpoint.attacker_transform.save(os);
  if (!os)
    throw std::runtime_error("save_blackbox_checkpoint: serialization failure");
  runtime::write_envelope_atomic(path, kCheckpointMagic, kCheckpointVersion,
                                 os.str());
}

BlackBoxCheckpoint load_blackbox_checkpoint(const std::string& path) {
  std::uint32_t version = 0;
  std::istringstream is(
      runtime::read_envelope_versioned(path, kCheckpointMagic,
                                       kCheckpointVersionMin,
                                       kCheckpointVersion, version,
                                       "black-box checkpoint"),
      std::ios::binary);
  BlackBoxCheckpoint c;
  c.config_fingerprint = read_pod<std::uint64_t>(is, "fingerprint");
  c.next_round =
      static_cast<std::size_t>(read_pod<std::uint64_t>(is, "round index"));
  c.finished = read_pod<std::uint8_t>(is, "finished flag") != 0;
  c.total_queries =
      static_cast<std::size_t>(read_pod<std::uint64_t>(is, "query count"));
  const auto n_rounds = read_pod<std::uint64_t>(is, "round count");
  c.rounds.reserve(static_cast<std::size_t>(n_rounds));
  for (std::uint64_t i = 0; i < n_rounds; ++i)
    c.rounds.push_back(read_round_stats(is, version));
  c.counts = read_matrix(is, "dataset");
  c.cache_rows = read_matrix(is, "query cache");
  const auto n_labels = read_pod<std::uint64_t>(is, "cache label count");
  c.cache_labels.reserve(static_cast<std::size_t>(n_labels));
  for (std::uint64_t i = 0; i < n_labels; ++i)
    c.cache_labels.push_back(read_pod<std::int32_t>(is, "cache label"));
  c.substitute = nn::load_network(is);
  c.attacker_transform = features::CountTransform::load(is);
  return c;
}

}  // namespace mev::core
