// MalwareDetector: the deployable unit the paper attacks — the feature
// pipeline (log -> counts -> normalized features) plus the DNN, behind one
// API that accepts either raw logs or pre-extracted count vectors.
//
// Threading model: the detector (pipeline + network) is read-only during
// scanning. The scan overloads that take an nn::InferenceSession are
// thread-safe when each thread passes its own session (make_session());
// that is the path every concurrent caller should use (or go through
// serve::ScoringService, which owns a session per worker). The
// session-less overloads route through one internal scratch session; they
// serialize on an internal mutex, so they are safe — but sequential — on
// a shared detector, and exist for convenience in single-threaded code.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/api_log.hpp"
#include "data/dataset.hpp"
#include "features/pipeline.hpp"
#include "nn/network.hpp"
#include "nn/session.hpp"
#include "nn/trainer.hpp"

namespace mev::core {

struct Verdict {
  int predicted_class = data::kCleanLabel;
  double malware_confidence = 0.0;  // P(malware)

  bool is_malware() const noexcept {
    return predicted_class == data::kMalwareLabel;
  }
};

class MalwareDetector {
 public:
  /// Assembles a detector from a fitted pipeline and a trained network.
  MalwareDetector(features::FeaturePipeline pipeline,
                  std::shared_ptr<nn::Network> network);

  /// Creates an inference session bound to this detector's network; one
  /// per thread for concurrent scanning.
  nn::InferenceSession make_session(std::size_t max_batch = 0) const;

  /// End-to-end verdict for one log file. The session-less overloads
  /// serialize on the internal scratch session; prefer the session
  /// overloads (one session per thread) for concurrent scanning.
  Verdict scan(const data::ApiLog& log);
  Verdict scan(nn::InferenceSession& session, const data::ApiLog& log) const;

  /// Verdicts for raw count rows.
  std::vector<Verdict> scan_counts(const math::Matrix& counts);
  std::vector<Verdict> scan_counts(nn::InferenceSession& session,
                                   const math::Matrix& counts) const;

  /// Verdicts for already-normalized feature rows.
  std::vector<Verdict> scan_features(const math::Matrix& features);
  std::vector<Verdict> scan_features(nn::InferenceSession& session,
                                     const math::Matrix& features) const;

  /// Normalized features for a log / counts — the representation attacks
  /// perturb.
  std::vector<float> features_of(const data::ApiLog& log) const;
  math::Matrix features_of_counts(const math::Matrix& counts) const;

  const features::FeaturePipeline& pipeline() const noexcept {
    return pipeline_;
  }
  const nn::Network& network() const noexcept { return *network_; }
  nn::Network& network() noexcept { return *network_; }
  std::shared_ptr<nn::Network> network_ptr() noexcept { return network_; }

 private:
  /// Must be called with scratch_mutex_ held.
  nn::InferenceSession& scratch();

  features::FeaturePipeline pipeline_;
  std::shared_ptr<nn::Network> network_;
  /// Serializes the session-less scan overloads: the lazily-created
  /// scratch session is shared mutable state, so concurrent session-less
  /// calls on one detector queue up here instead of racing. Heap-held so
  /// the detector stays movable.
  std::unique_ptr<std::mutex> scratch_mutex_;
  /// Lazily-created session backing the session-less scan overloads.
  std::unique_ptr<nn::InferenceSession> scratch_;
};

struct DetectorTrainingResult {
  std::unique_ptr<MalwareDetector> detector;
  nn::TrainHistory history;
  /// Normalized feature matrices (train/val/test) produced during
  /// training, so callers need not re-run the transform.
  math::Matrix train_features;
  math::Matrix val_features;
  math::Matrix test_features;
};

/// Fits the count transform on the training counts, trains a fresh network
/// with the given architecture, and assembles the detector.
DetectorTrainingResult train_detector(const data::DatasetBundle& bundle,
                                      const nn::MlpConfig& architecture,
                                      const nn::TrainConfig& training,
                                      const data::ApiVocab& vocab);

}  // namespace mev::core
