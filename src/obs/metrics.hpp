// MetricsRegistry: named counters, gauges, and Log2Histogram-backed
// histograms with cheap handle-based hot-path access.
//
//   obs::MetricsRegistry registry;
//   obs::Counter queries = registry.counter("mev.core.blackbox.oracle_queries",
//                                           "cumulative oracle submissions");
//   queries.inc();                      // lock-free atomic add, no lookup
//   registry.write_prometheus(file);    // text exposition format
//   registry.write_json(file);          // point-in-time snapshot
//
// Handles are obtained once (registration takes the registry mutex and a
// name lookup) and then used forever: increments/sets are a relaxed atomic
// op, histogram records take only that histogram's mutex. Requesting an
// existing name returns a handle to the same cell (same-kind required);
// cells have stable addresses for the registry's lifetime, so handles
// never dangle while the registry lives. Metric names use the
// `mev.<layer>.<op>` convention; exporters sanitize for Prometheus
// ('.' and '-' become '_').
//
// A metric may carry labels: registering the same name with different
// label sets creates one cell per label set (all must share one kind —
// Prometheus allows one TYPE per name), and the exposition renders
// `name{key="value"} v` with HELP/TYPE emitted once per name. The serving
// layer uses this for per-reason rejection counters.
//
// With MEV_ENABLE_OBS=OFF the whole registry collapses to inline no-op
// stubs (exports produce empty documents) — call sites compile unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/window.hpp"

#ifndef MEV_OBS_ENABLED
#define MEV_OBS_ENABLED 1
#endif

namespace mev::runtime {
class Clock;
}

namespace mev::obs {

/// Label set attached to a metric cell: ordered (key, value) pairs. Order
/// is part of the cell's identity — register with a consistent order.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Prometheus text-exposition escaping, available in both build modes
/// (pure string helpers; tests/obs pins them). HELP text escapes
/// backslash and newline; label values additionally escape double quotes.
std::string prometheus_escape_help(std::string_view text);
std::string prometheus_escape_label_value(std::string_view value);
/// Renders a sample value the way Prometheus expects: NaN, +Inf, -Inf for
/// non-finite doubles, shortest round-trip decimal otherwise.
std::string prometheus_number(double v);

#if MEV_OBS_ENABLED

namespace detail {

enum class MetricKind { kCounter, kGauge, kHistogram, kWindowedHistogram };

/// One registered metric; exactly one of the payloads is active (by kind).
struct Metric {
  std::string name;
  std::string help;
  Labels labels;
  MetricKind kind;
  std::atomic<std::uint64_t> counter{0};
  std::atomic<double> gauge{0.0};
  mutable std::mutex histogram_mutex;
  Log2Histogram histogram;
  /// kWindowedHistogram only: the lock-free time-bucket ring behind the
  /// 1m/5m exposition, plus the clock that timestamps records and
  /// evaluates windows at scrape time. Atomic because every registration
  /// re-wires it (latest registrant wins) while recorders may be loading
  /// it concurrently: in a process-global registry the cell outlives any
  /// one registrant, so an injected clock must stay replaceable after its
  /// owner dies.
  std::unique_ptr<SlidingHistogram> window;
  std::atomic<runtime::Clock*> clock{nullptr};
};

}  // namespace detail

/// Monotonic counter handle. Default-constructed handles are inert no-ops.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) noexcept {
    if (cell_ != nullptr)
      cell_->counter.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return cell_ != nullptr ? cell_->counter.load(std::memory_order_relaxed)
                            : 0;
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::Metric* cell) noexcept : cell_(cell) {}
  detail::Metric* cell_ = nullptr;
};

/// Last-value gauge handle. Default-constructed handles are inert no-ops.
class Gauge {
 public:
  Gauge() = default;
  void set(double v) noexcept {
    if (cell_ != nullptr) cell_->gauge.store(v, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return cell_ != nullptr ? cell_->gauge.load(std::memory_order_relaxed)
                            : 0.0;
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::Metric* cell) noexcept : cell_(cell) {}
  detail::Metric* cell_ = nullptr;
};

/// Log2Histogram handle (thread-safe via a per-histogram mutex).
/// Default-constructed handles are inert no-ops.
class Histogram {
 public:
  Histogram() = default;
  void record(std::uint64_t v) noexcept {
    if (cell_ == nullptr) return;
    std::lock_guard<std::mutex> lock(cell_->histogram_mutex);
    cell_->histogram.record(v);
  }
  Log2Histogram snapshot() const {
    if (cell_ == nullptr) return Log2Histogram{};
    std::lock_guard<std::mutex> lock(cell_->histogram_mutex);
    return cell_->histogram;
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::Metric* cell) noexcept : cell_(cell) {}
  detail::Metric* cell_ = nullptr;
};

/// Windowed histogram handle: one record feeds both the lifetime
/// Log2Histogram (under the cell mutex, like Histogram) and the lock-free
/// sliding ring, so /metrics exports 1m/5m percentiles next to lifetime
/// ones. Default-constructed handles are inert no-ops.
class WindowedHistogram {
 public:
  WindowedHistogram() = default;
  void record(std::uint64_t v) noexcept;
  Log2Histogram lifetime() const;
  /// Merged histogram of the trailing window (0 = the ring's full span),
  /// evaluated at the cell clock's current time.
  Log2Histogram windowed(std::uint64_t window_us) const;

 private:
  friend class MetricsRegistry;
  explicit WindowedHistogram(detail::Metric* cell) noexcept : cell_(cell) {}
  detail::Metric* cell_ = nullptr;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds) a metric and returns its handle. `help` is kept
  /// from the first registration. A (name, labels) pair names one cell;
  /// the same name may be registered with several label sets. Throws
  /// std::invalid_argument when the name is already registered as a
  /// different kind (with any label set — one TYPE per name).
  Counter counter(std::string_view name, std::string_view help = "",
                  Labels labels = {});
  Gauge gauge(std::string_view name, std::string_view help = "",
              Labels labels = {});
  Histogram histogram(std::string_view name, std::string_view help = "",
                      Labels labels = {});
  /// Windowed histogram: lifetime exposition identical to histogram(),
  /// plus a `<name>_window{window="1m"|"5m",stat=...}` gauge family with
  /// windowed p50/p95/p99/count. `clock` timestamps records and scrapes
  /// (nullptr = the system clock; inject a FakeClock for deterministic
  /// window tests); `window` sets the ring geometry (default 60 x 5 s).
  /// The geometry is fixed by the first registration of a (name, labels)
  /// cell; the clock is re-wired on EVERY registration (latest wins), so
  /// a registrant whose injected clock dies with it is superseded as
  /// soon as the next registrant constructs — required because the
  /// ambient process-global registry outlives any one service.
  WindowedHistogram windowed_histogram(std::string_view name,
                                       std::string_view help = "",
                                       runtime::Clock* clock = nullptr,
                                       WindowConfig window = {},
                                       Labels labels = {});

  std::size_t size() const;

  /// Prometheus text exposition format, version 0.0.4. Metric names are
  /// sanitized ('.'/'-' -> '_'); histograms export cumulative integer
  /// le buckets (the Log2Histogram power-of-two upper bounds) plus
  /// _sum/_count.
  void write_prometheus(std::ostream& os) const;
  std::string prometheus() const;

  /// JSON snapshot: {"counters":{...},"gauges":{...},"histograms":{...}},
  /// histograms as {count,mean,min,max,p50,p95,p99}.
  void write_json(std::ostream& os) const;
  std::string json() const;

 private:
  detail::Metric& find_or_create(std::string_view name, std::string_view help,
                                 detail::MetricKind kind,
                                 const Labels& labels);

  mutable std::mutex mutex_;  // guards metrics_ (registration + export)
  std::vector<std::unique_ptr<detail::Metric>> metrics_;  // insertion order
};

#else  // MEV_OBS_ENABLED == 0: inline no-op stubs, same shape.

class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t = 1) noexcept {}
  std::uint64_t value() const noexcept { return 0; }
};

class Gauge {
 public:
  Gauge() = default;
  void set(double) noexcept {}
  double value() const noexcept { return 0.0; }
};

class Histogram {
 public:
  Histogram() = default;
  void record(std::uint64_t) noexcept {}
  Log2Histogram snapshot() const { return Log2Histogram{}; }
};

class WindowedHistogram {
 public:
  WindowedHistogram() = default;
  void record(std::uint64_t) noexcept {}
  Log2Histogram lifetime() const { return Log2Histogram{}; }
  Log2Histogram windowed(std::uint64_t) const { return Log2Histogram{}; }
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter counter(std::string_view, std::string_view = "", Labels = {}) {
    return {};
  }
  Gauge gauge(std::string_view, std::string_view = "", Labels = {}) {
    return {};
  }
  Histogram histogram(std::string_view, std::string_view = "", Labels = {}) {
    return {};
  }
  WindowedHistogram windowed_histogram(std::string_view,
                                       std::string_view = "",
                                       runtime::Clock* = nullptr,
                                       WindowConfig = {}, Labels = {}) {
    return {};
  }
  std::size_t size() const { return 0; }
  void write_prometheus(std::ostream& os) const;
  std::string prometheus() const { return ""; }
  void write_json(std::ostream& os) const;
  std::string json() const {
    return "{\"counters\":{},\"gauges\":{},\"histograms\":{}}\n";
  }
};

#endif  // MEV_OBS_ENABLED

}  // namespace mev::obs
