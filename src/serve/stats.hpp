// Serving-side observability: power-of-two histograms for latencies and
// batch sizes plus the counter block every ScoringService exposes.
//
// The histogram trades exactness for O(1) recording and a fixed footprint:
// values land in [2^(i-1), 2^i) buckets and percentiles are linearly
// interpolated inside the winning bucket, so p50/p95/p99 carry at most one
// octave of error — plenty for capacity planning, cheap enough to sit on
// the batch completion path.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace mev::serve {

/// Fixed-size log2-bucketed histogram of non-negative 64-bit values
/// (microseconds, row counts, ...). Not thread-safe; the service keeps one
/// per guarded stats block.
class Log2Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  void record(std::uint64_t value) noexcept;
  void merge(const Log2Histogram& other) noexcept;
  void reset() noexcept;

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const noexcept { return max_; }
  /// Arithmetic mean of the recorded values (exact, from the running sum).
  double mean() const noexcept;

  /// Approximate p-th percentile, p in [0, 100]; linearly interpolated
  /// within the bucket and clamped to the observed min/max. 0 when empty.
  double percentile(double p) const noexcept;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

/// The p50/p95/p99 digest reported per histogram.
struct LatencySummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::uint64_t max = 0;
};

LatencySummary summarize(const Log2Histogram& h);

/// Point-in-time copy of a service's counters and histograms, returned by
/// ScoringService::stats(). Requests are counted once each; rows follow
/// the request they belong to.
struct ServiceStats {
  std::uint64_t accepted_requests = 0;
  std::uint64_t accepted_rows = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_shutting_down = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t completed_requests = 0;
  std::uint64_t completed_rows = 0;
  std::uint64_t batches = 0;
  std::uint64_t model_swaps = 0;

  Log2Histogram batch_rows;        // rows per scored batch
  Log2Histogram queue_delay_us;    // submit -> batch formation, per request
  Log2Histogram e2e_latency_us;    // submit -> verdict ready, per request

  std::uint64_t rejected_total() const noexcept {
    return rejected_queue_full + rejected_shutting_down + rejected_deadline;
  }

  /// Multi-line human-readable dump (the examples print this).
  std::string to_string() const;
};

}  // namespace mev::serve
