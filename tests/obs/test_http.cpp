// RequestParser edge cases: torn reads at every byte boundary, pipelined
// requests, limit enforcement (431 for lines/count/total header bytes,
// 413 over-cap bodies, 411 unframed POSTs), and malformed input (400).
// The parser is pure string code compiled in every build mode, so these
// tests run with and without MEV_ENABLE_OBS.
#include <string>

#include <gtest/gtest.h>

#include "obs/http.hpp"

namespace {

using mev::obs::http::ParserLimits;
using mev::obs::http::ParseStatus;
using mev::obs::http::Request;
using mev::obs::http::RequestParser;

constexpr const char* kSimpleGet =
    "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n";

TEST(RequestParser, ParsesASimpleGet) {
  RequestParser parser;
  const std::string input = kSimpleGet;
  const std::size_t consumed = parser.feed(input);
  ASSERT_EQ(parser.status(), ParseStatus::kComplete);
  EXPECT_EQ(consumed, input.size());
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().target, "/metrics");
  EXPECT_EQ(parser.request().version, "HTTP/1.1");
  ASSERT_NE(parser.request().header("host"), nullptr);
  EXPECT_EQ(*parser.request().header("HOST"), "localhost");
}

TEST(RequestParser, TornAtEveryByteBoundaryStillParses) {
  const std::string input = kSimpleGet;
  for (std::size_t split = 1; split < input.size(); ++split) {
    RequestParser parser;
    std::size_t consumed = parser.feed(input.data(), split);
    EXPECT_EQ(parser.status(), ParseStatus::kNeedMore)
        << "split at " << split;
    consumed += parser.feed(input.data() + consumed, input.size() - consumed);
    ASSERT_EQ(parser.status(), ParseStatus::kComplete)
        << "split at " << split;
    EXPECT_EQ(consumed, input.size()) << "split at " << split;
    EXPECT_EQ(parser.request().target, "/metrics") << "split at " << split;
  }
}

TEST(RequestParser, OneByteAtATimeStillParses) {
  const std::string input = kSimpleGet;
  RequestParser parser;
  std::size_t consumed = 0;
  for (char c : input)
    if (parser.status() == ParseStatus::kNeedMore)
      consumed += parser.feed(&c, 1);
  ASSERT_EQ(parser.status(), ParseStatus::kComplete);
  EXPECT_EQ(consumed, input.size());
  EXPECT_EQ(parser.request().path(), "/metrics");
}

TEST(RequestParser, PipelinedRequestsAreConsumedOneAtATime) {
  const std::string input =
      "GET /healthz HTTP/1.1\r\n\r\nGET /readyz HTTP/1.1\r\n\r\n";
  RequestParser parser;
  const std::size_t first = parser.feed(input);
  ASSERT_EQ(parser.status(), ParseStatus::kComplete);
  EXPECT_EQ(parser.request().target, "/healthz");
  EXPECT_LT(first, input.size());  // second request left unconsumed

  parser.reset();
  const std::size_t second =
      parser.feed(input.data() + first, input.size() - first);
  ASSERT_EQ(parser.status(), ParseStatus::kComplete);
  EXPECT_EQ(parser.request().target, "/readyz");
  EXPECT_EQ(first + second, input.size());
}

TEST(RequestParser, OversizedRequestLineFailsWith431) {
  ParserLimits limits;
  limits.max_request_line = 64;
  RequestParser parser(limits);
  const std::string input =
      "GET /" + std::string(200, 'a') + " HTTP/1.1\r\n\r\n";
  parser.feed(input);
  ASSERT_EQ(parser.status(), ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(RequestParser, OversizedRequestLineWithoutNewlineFailsEagerly) {
  // The limit applies to the accumulated partial line too — a scraper
  // streaming an endless first line is rejected without buffering it all.
  ParserLimits limits;
  limits.max_request_line = 64;
  RequestParser parser(limits);
  const std::string input(100, 'a');  // no newline yet
  parser.feed(input);
  ASSERT_EQ(parser.status(), ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(RequestParser, TooManyHeadersFailWith431) {
  ParserLimits limits;
  limits.max_headers = 4;
  RequestParser parser(limits);
  std::string input = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 10; ++i)
    input += "X-Header-" + std::to_string(i) + ": v\r\n";
  input += "\r\n";
  parser.feed(input);
  ASSERT_EQ(parser.status(), ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(RequestParser, MalformedRequestLineFailsWith400) {
  for (const char* bad : {"NOSPACES\r\n\r\n", "GET /only-two\r\n\r\n",
                          "GET / NOTHTTP/1.1\r\n\r\n"}) {
    RequestParser parser;
    parser.feed(std::string_view(bad));
    ASSERT_EQ(parser.status(), ParseStatus::kError) << bad;
    EXPECT_EQ(parser.error_status(), 400) << bad;
  }
}

TEST(RequestParser, HeaderWithoutColonFailsWith400) {
  RequestParser parser;
  parser.feed(std::string_view("GET / HTTP/1.1\r\nbogusheader\r\n\r\n"));
  ASSERT_EQ(parser.status(), ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(RequestParser, RequestsWithBodiesAreRejected) {
  // Default limits (max_body_bytes == 0): any announced body is over the
  // cap — 413, the admin plane's posture.
  RequestParser parser;
  parser.feed(std::string_view(
      "POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"));
  ASSERT_EQ(parser.status(), ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), 413);

  // Chunked framing is out of scope in every configuration: 400.
  parser.reset();
  parser.feed(std::string_view(
      "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"));
  ASSERT_EQ(parser.status(), ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), 400);

  // An explicit zero-length body is fine.
  parser.reset();
  parser.feed(std::string_view("GET / HTTP/1.1\r\nContent-Length: 0\r\n\r\n"));
  EXPECT_EQ(parser.status(), ParseStatus::kComplete);
}

TEST(RequestParser, ParsesABodyWithinTheCap) {
  ParserLimits limits;
  limits.max_body_bytes = 64;
  RequestParser parser(limits);
  const std::string input =
      "POST /v1/score HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world";
  const std::size_t consumed = parser.feed(input);
  ASSERT_EQ(parser.status(), ParseStatus::kComplete);
  EXPECT_EQ(consumed, input.size());
  EXPECT_EQ(parser.request().body, "hello world");
}

TEST(RequestParser, BodyTornAtEveryByteBoundaryStillParses) {
  ParserLimits limits;
  limits.max_body_bytes = 64;
  const std::string input =
      "POST /v1/score HTTP/1.1\r\nContent-Length: 12\r\n\r\nabcdefghijkl";
  for (std::size_t split = 1; split < input.size(); ++split) {
    RequestParser parser(limits);
    std::size_t consumed = parser.feed(input.data(), split);
    EXPECT_EQ(parser.status(), ParseStatus::kNeedMore)
        << "split at " << split;
    consumed += parser.feed(input.data() + consumed, input.size() - consumed);
    ASSERT_EQ(parser.status(), ParseStatus::kComplete)
        << "split at " << split;
    EXPECT_EQ(consumed, input.size()) << "split at " << split;
    EXPECT_EQ(parser.request().body, "abcdefghijkl")
        << "split at " << split;
  }
}

TEST(RequestParser, BodyLeavesPipelinedBytesUnconsumed) {
  ParserLimits limits;
  limits.max_body_bytes = 64;
  RequestParser parser(limits);
  const std::string input =
      "POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyzGET /b HTTP/1.1\r\n\r\n";
  const std::size_t first = parser.feed(input);
  ASSERT_EQ(parser.status(), ParseStatus::kComplete);
  EXPECT_EQ(parser.request().body, "xyz");
  EXPECT_LT(first, input.size());
  parser.reset();
  parser.feed(input.data() + first, input.size() - first);
  ASSERT_EQ(parser.status(), ParseStatus::kComplete);
  EXPECT_EQ(parser.request().target, "/b");
}

TEST(RequestParser, BodyOverTheCapFailsWith413BeforeBuffering) {
  ParserLimits limits;
  limits.max_body_bytes = 16;
  RequestParser parser(limits);
  // The rejection comes from the declared length at end-of-headers; the
  // parser never waits for (or stores) the oversized payload.
  parser.feed(std::string_view(
      "POST /v1/score HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n"));
  ASSERT_EQ(parser.status(), ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(RequestParser, PostWithoutContentLengthFailsWith411) {
  ParserLimits limits;
  limits.max_body_bytes = 64;
  for (const char* method : {"POST", "PUT"}) {
    RequestParser parser(limits);
    parser.feed(std::string(method) + " /v1/score HTTP/1.1\r\n\r\n");
    ASSERT_EQ(parser.status(), ParseStatus::kError) << method;
    EXPECT_EQ(parser.error_status(), 411) << method;
  }
  // GET without a length stays a complete bodyless request.
  RequestParser parser(limits);
  parser.feed(std::string_view("GET /healthz HTTP/1.1\r\n\r\n"));
  EXPECT_EQ(parser.status(), ParseStatus::kComplete);
}

TEST(RequestParser, GarbageContentLengthFailsWith400) {
  ParserLimits limits;
  limits.max_body_bytes = 64;
  for (const char* bad : {"abc", "-1", "1 2", "0x10", ""}) {
    RequestParser parser(limits);
    parser.feed("POST / HTTP/1.1\r\nContent-Length: " + std::string(bad) +
                "\r\n\r\n");
    ASSERT_EQ(parser.status(), ParseStatus::kError) << "'" << bad << "'";
    EXPECT_EQ(parser.error_status(), 400) << "'" << bad << "'";
  }
}

TEST(RequestParser, TotalHeaderBytesOverTheCapFailWith431) {
  ParserLimits limits;
  limits.max_header_line = 4096;
  limits.max_headers = 64;
  limits.max_header_bytes = 256;
  // Each line is far under the per-line cap and the count cap; only the
  // total-bytes cap can catch this shape.
  std::string input = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 10; ++i)
    input += "X-Pad-" + std::to_string(i) + ": " + std::string(40, 'v') +
             "\r\n";
  input += "\r\n";
  RequestParser parser(limits);
  parser.feed(input);
  ASSERT_EQ(parser.status(), ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), 431);

  // And eagerly, even when the oversized header block never completes a
  // line (no newline at all past the cap).
  RequestParser eager(limits);
  eager.feed("GET / HTTP/1.1\r\nX-Pad: " + std::string(300, 'v'));
  ASSERT_EQ(eager.status(), ParseStatus::kError);
  EXPECT_EQ(eager.error_status(), 431);
}

TEST(RequestParser, BareLfAndLeadingBlankLinesAreTolerated) {
  RequestParser parser;
  parser.feed(std::string_view("\r\n\nGET /varz HTTP/1.1\nHost: x\n\n"));
  ASSERT_EQ(parser.status(), ParseStatus::kComplete);
  EXPECT_EQ(parser.request().target, "/varz");
  ASSERT_NE(parser.request().header("Host"), nullptr);
  EXPECT_EQ(*parser.request().header("Host"), "x");
}

TEST(RequestParser, PathStripsTheQueryString) {
  RequestParser parser;
  parser.feed(std::string_view("GET /metrics?verbose=1 HTTP/1.1\r\n\r\n"));
  ASSERT_EQ(parser.status(), ParseStatus::kComplete);
  EXPECT_EQ(parser.request().target, "/metrics?verbose=1");
  EXPECT_EQ(parser.request().path(), "/metrics");
}

TEST(RequestParser, ResetClearsErrorAndRequestState) {
  RequestParser parser;
  parser.feed(std::string_view("garbage\r\n"));
  ASSERT_EQ(parser.status(), ParseStatus::kError);
  parser.reset();
  EXPECT_EQ(parser.status(), ParseStatus::kNeedMore);
  EXPECT_EQ(parser.error_status(), 0);
  parser.feed(std::string_view(kSimpleGet));
  EXPECT_EQ(parser.status(), ParseStatus::kComplete);
}

TEST(FormatResponse, ProducesAFramedCloseDelimitedResponse) {
  const std::string response =
      mev::obs::http::format_response(200, "text/plain", "ok\n");
  EXPECT_EQ(response,
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/plain\r\n"
            "Content-Length: 3\r\n"
            "Connection: close\r\n\r\n"
            "ok\n");
  EXPECT_NE(mev::obs::http::format_response(503, "text/plain", "draining\n")
                .find("503 Service Unavailable"),
            std::string::npos);
}

TEST(FormatResponse, KeepAliveVariantWithExtraHeaders) {
  const std::string response = mev::obs::http::format_response(
      429, "application/json", "{}\n", /*keep_alive=*/true,
      {{"Retry-After", "2"}});
  EXPECT_NE(response.find("HTTP/1.1 429 Too Many Requests\r\n"),
            std::string::npos);
  EXPECT_NE(response.find("Retry-After: 2\r\n"), std::string::npos);
  EXPECT_NE(response.find("Connection: keep-alive\r\n\r\n{}\n"),
            std::string::npos);
  EXPECT_EQ(response.find("Connection: close"), std::string::npos);
}

TEST(FormatResponse, StatusTextCoversTheFrontendStatuses) {
  using mev::obs::http::status_text;
  EXPECT_STREQ(status_text(401), "Unauthorized");
  EXPECT_STREQ(status_text(411), "Length Required");
  EXPECT_STREQ(status_text(413), "Payload Too Large");
  EXPECT_STREQ(status_text(415), "Unsupported Media Type");
  EXPECT_STREQ(status_text(429), "Too Many Requests");
  EXPECT_STREQ(status_text(504), "Gateway Timeout");
}

TEST(ParseQuery, SplitsPairsAndIgnoresThePath) {
  using mev::obs::http::parse_query;
  const auto params = parse_query("/tracez?name_prefix=mev.net&limit=10");
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].first, "name_prefix");
  EXPECT_EQ(params[0].second, "mev.net");
  EXPECT_EQ(params[1].first, "limit");
  EXPECT_EQ(params[1].second, "10");
}

TEST(ParseQuery, NoQueryStringYieldsNoParams) {
  using mev::obs::http::parse_query;
  EXPECT_TRUE(parse_query("/tracez").empty());
  EXPECT_TRUE(parse_query("/tracez?").empty());
  EXPECT_TRUE(parse_query("").empty());
}

TEST(ParseQuery, ValuelessKeysAndEmptySegmentsAreTolerated) {
  using mev::obs::http::parse_query;
  const auto params = parse_query("/x?flag&&a=1&=orphan");
  ASSERT_EQ(params.size(), 3u);
  EXPECT_EQ(params[0].first, "flag");
  EXPECT_EQ(params[0].second, "");
  EXPECT_EQ(params[1].first, "a");
  EXPECT_EQ(params[1].second, "1");
  EXPECT_EQ(params[2].first, "");
  EXPECT_EQ(params[2].second, "orphan");
}

TEST(ParseQuery, PercentEscapesAndPlusDecode) {
  using mev::obs::http::parse_query;
  const auto params = parse_query("/x?name=mev%2Enet+scan&pct=100%25");
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].second, "mev.net scan");
  EXPECT_EQ(params[1].second, "100%");
}

TEST(ParseQuery, MalformedEscapesAreKeptLiterally) {
  // Query parsing never fails: a bad escape is surfaced, not rejected.
  using mev::obs::http::parse_query;
  const auto params = parse_query("/x?a=%zz&b=%2&c=%");
  ASSERT_EQ(params.size(), 3u);
  EXPECT_EQ(params[0].second, "%zz");
  EXPECT_EQ(params[1].second, "%2");
  EXPECT_EQ(params[2].second, "%");
}

TEST(ParseQuery, QueryParamReturnsFirstMatchOrNull) {
  using mev::obs::http::parse_query;
  using mev::obs::http::query_param;
  const auto params = parse_query("/x?a=1&b=2&a=3");
  const std::string* a = query_param(params, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(*a, "1");
  const std::string* b = query_param(params, "b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(*b, "2");
  EXPECT_EQ(query_param(params, "missing"), nullptr);
}

}  // namespace
