#include "obs/admin_server.hpp"

#if MEV_OBS_ENABLED

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>

#include "obs/scope.hpp"

namespace mev::obs {

namespace {

constexpr const char* kTextPlain = "text/plain; charset=utf-8";
constexpr const char* kPromText = "text/plain; version=0.0.4; charset=utf-8";
constexpr const char* kJson = "application/json";

void append_json_escaped(std::string& out, const char* s) {
  for (; s != nullptr && *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  if (res.ec == std::errc()) {
    out.append(buf, res.ptr);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  }
}

/// Writes `size` bytes, tolerating partial sends; MSG_NOSIGNAL so a
/// scraper that hangs up mid-response does not SIGPIPE the process.
void send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) return;  // timeout, reset, or shutdown — give up quietly
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

AdminServer::AdminServer(AdminServerConfig config)
    : config_(std::move(config)),
      tracer_(resolve(config_.tracer)),
      registry_(resolve(config_.metrics)),
      logger_(resolve(config_.logger)) {
  if (config_.worker_threads == 0) config_.worker_threads = 1;
  if (config_.max_queued_connections == 0) config_.max_queued_connections = 1;
  requests_counter_ = registry_->counter(
      "mev.obs.admin.requests", "HTTP requests served by the admin plane");
  shed_counter_ = registry_->counter(
      "mev.obs.admin.connections_shed",
      "admin connections closed unserved because the queue was full");
  probe_ = [] { return Readiness{}; };
}

AdminServer::~AdminServer() { stop(); }

void AdminServer::set_readiness_probe(ReadinessProbe probe) {
  std::lock_guard<std::mutex> lock(probe_mutex_);
  probe_ = std::move(probe);
}

bool AdminServer::start() {
  if (running_.load(std::memory_order_acquire)) return true;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    MEV_LOG(*logger_, LogLevel::kError, "obs.admin", "socket() failed",
            {LogField::i64_value("errno", errno)});
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    MEV_LOG(*logger_, LogLevel::kError, "obs.admin", "bad bind address",
            {LogField::string("address", config_.bind_address.c_str())});
    ::close(fd);
    return false;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    MEV_LOG(*logger_, LogLevel::kError, "obs.admin", "bind/listen failed",
            {LogField::string("address", config_.bind_address.c_str()),
             LogField::u64_value("port", config_.port),
             LogField::i64_value("errno", errno)});
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0)
    bound_port_ = ntohs(bound.sin_port);

  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  workers_.reserve(config_.worker_threads);
  for (std::size_t i = 0; i < config_.worker_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });

  MEV_LOG(*logger_, LogLevel::kInfo, "obs.admin", "admin server started",
          {LogField::string("address", config_.bind_address.c_str()),
           LogField::u64_value("port", bound_port_),
           LogField::u64_value("workers", config_.worker_threads)});
  return true;
}

void AdminServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Wake a blocked accept(); the fd itself is closed only after the
  // accept thread is joined, so it can never race onto a recycled fd.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& worker : workers_)
    if (worker.joinable()) worker.join();
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Shed anything still queued; every accepted fd is closed exactly once.
  std::lock_guard<std::mutex> lock(queue_mutex_);
  for (int fd : pending_fds_) ::close(fd);
  pending_fds_.clear();
  MEV_LOG(*logger_, LogLevel::kInfo, "obs.admin", "admin server stopped",
          {LogField::u64_value("port", bound_port_)});
}

bool AdminServer::running() const noexcept {
  return running_.load(std::memory_order_acquire);
}

std::uint16_t AdminServer::port() const noexcept {
  return running() ? bound_port_ : 0;
}

void AdminServer::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (!running_.load(std::memory_order_acquire)) break;
    if (ready <= 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (pending_fds_.size() >= config_.max_queued_connections)
        shed = true;
      else
        pending_fds_.push_back(conn);
    }
    if (shed) {
      // Bounded model: close unserved rather than queue without limit.
      ::close(conn);
      shed_counter_.inc();
      MEV_LOG_EVERY(*logger_, LogLevel::kWarn, /*rate_per_s=*/1.0,
                    /*burst=*/3.0, "obs.admin",
                    "admin connection shed: queue full",
                    {LogField::u64_value("max_queued",
                                         config_.max_queued_connections)});
    } else {
      queue_cv_.notify_one();
    }
  }
}

void AdminServer::worker_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return !pending_fds_.empty() ||
               !running_.load(std::memory_order_acquire);
      });
      if (pending_fds_.empty()) return;  // stopping and drained
      fd = pending_fds_.front();
      pending_fds_.pop_front();
    }
    serve_connection(fd);
  }
}

void AdminServer::serve_connection(int fd) {
  timeval timeout{};
  timeout.tv_sec = static_cast<time_t>(config_.io_timeout_ms / 1000);
  timeout.tv_usec =
      static_cast<suseconds_t>((config_.io_timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  http::RequestParser parser;
  char buffer[4096];
  std::string response;
  // Connection-per-request: read until one request parses (tolerating any
  // byte-boundary splits), answer it, close. A scraper that never
  // completes a request hits the receive timeout and is dropped.
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;  // EOF, timeout, or error: nothing to answer
    parser.feed(buffer, static_cast<std::size_t>(n));
    if (parser.status() == http::ParseStatus::kComplete) {
      response = handle(parser.request());
      break;
    }
    if (parser.status() == http::ParseStatus::kError) {
      response = http::format_response(parser.error_status(), kTextPlain,
                                       std::string(http::status_text(
                                           parser.error_status())) +
                                           "\n");
      break;
    }
  }
  if (!response.empty()) send_all(fd, response.data(), response.size());
  ::close(fd);
}

std::string AdminServer::metrics_body() const {
  std::string body = registry_->prometheus();
  // The telemetry plane's own loss signals, appended so they exist even
  // when nothing else registered them: dropped spans mean a truncated
  // trace, runaway cardinality means an expensive scrape.
  body +=
      "# HELP trace_spans_dropped_total trace events dropped on ring "
      "overflow\n"
      "# TYPE trace_spans_dropped_total counter\n"
      "trace_spans_dropped_total ";
  body += std::to_string(tracer_->dropped());
  body +=
      "\n# HELP metrics_series registered series in the metrics registry\n"
      "# TYPE metrics_series gauge\n"
      "metrics_series ";
  body += std::to_string(registry_->size());
  body += '\n';
  return body;
}

std::string AdminServer::tracez_body() const {
  const std::vector<TraceEvent> events = tracer_->recent(config_.tracez_spans);
  std::string body = "{\"spans\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) body += ',';
    first = false;
    body += "{\"name\":\"";
    append_json_escaped(body, e.name);
    body += "\",\"ph\":\"";
    body += e.phase;
    body += "\",\"tid\":";
    body += std::to_string(e.tid);
    body += ",\"ts_us\":";
    body += std::to_string(e.ts_us);
    body += ",\"dur_us\":";
    body += std::to_string(e.dur_us);
    if (e.num_args > 0) {
      body += ",\"args\":{";
      for (std::uint8_t a = 0; a < e.num_args; ++a) {
        if (a > 0) body += ',';
        body += '"';
        append_json_escaped(body, e.args[a].key);
        body += "\":";
        append_double(body, e.args[a].value);
      }
      body += '}';
    }
    body += '}';
  }
  body += "],\"dropped\":";
  body += std::to_string(tracer_->dropped());
  body += ",\"buffered\":";
  body += std::to_string(tracer_->event_count());
  body += "}\n";
  return body;
}

std::string AdminServer::handle(const http::Request& request) {
  requests_counter_.inc();
  if (request.method != "GET")
    return http::format_response(405, kTextPlain, "method not allowed\n");

  const std::string_view path = request.path();
  if (path == "/healthz")
    return http::format_response(200, kTextPlain, "ok\n");
  if (path == "/readyz") {
    ReadinessProbe probe;
    {
      std::lock_guard<std::mutex> lock(probe_mutex_);
      probe = probe_;
    }
    const Readiness readiness = probe ? probe() : Readiness{};
    return http::format_response(readiness.ready ? 200 : 503, kTextPlain,
                                 readiness.reason + "\n");
  }
  if (path == "/metrics")
    return http::format_response(200, kPromText, metrics_body());
  if (path == "/varz")
    return http::format_response(200, kJson, registry_->json());
  if (path == "/tracez")
    return http::format_response(200, kJson, tracez_body());
  return http::format_response(404, kTextPlain, "not found\n");
}

}  // namespace mev::obs

#endif  // MEV_OBS_ENABLED
