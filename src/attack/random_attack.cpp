#include "attack/random_attack.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "math/linalg.hpp"
#include "math/rng.hpp"
#include "nn/session.hpp"

namespace mev::attack {

RandomAddition::RandomAddition(RandomAdditionConfig config) : config_(config) {
  if (config_.theta < 0.0f)
    throw std::invalid_argument("RandomAddition: theta must be non-negative");
  if (config_.gamma < 0.0f || config_.gamma > 1.0f)
    throw std::invalid_argument("RandomAddition: gamma must be in [0, 1]");
}

AttackResult RandomAddition::craft(const nn::Network& model,
                                   const math::Matrix& x) const {
  const std::size_t n = x.rows(), m = x.cols();
  const auto budget = static_cast<std::size_t>(
      std::lround(static_cast<double>(config_.gamma) *
                  static_cast<double>(m)));
  AttackResult result;
  result.adversarial = x;
  result.evaded.assign(n, false);
  result.features_changed.assign(n, 0);
  result.l2_perturbation.assign(n, 0.0);

  math::Rng rng(config_.seed);
  std::vector<std::size_t> all_features(m);
  for (std::size_t j = 0; j < m; ++j) all_features[j] = j;

  for (std::size_t i = 0; i < n; ++i) {
    rng.shuffle(all_features);
    std::size_t used = 0;
    for (std::size_t j : all_features) {
      if (used >= budget) break;
      float& value = result.adversarial(i, j);
      if (value >= 1.0f) continue;  // add-only: saturated features skip
      value = std::min(1.0f, value + config_.theta);
      ++used;
    }
    result.features_changed[i] = used;
    result.l2_perturbation[i] =
        math::l2_distance(x.row(i), result.adversarial.row(i));
  }

  if (n > 0) {
    nn::InferenceSession session(model, n);
    const auto preds = session.predict(result.adversarial);
    for (std::size_t i = 0; i < n; ++i)
      result.evaded[i] = preds[i] == config_.target_class;
  }
  return result;
}

}  // namespace mev::attack
