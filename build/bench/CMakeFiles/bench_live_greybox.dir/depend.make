# Empty dependencies file for bench_live_greybox.
# This may be replaced when dependencies are built.
