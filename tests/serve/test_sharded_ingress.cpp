// Sharded-ingress behavior added in PR 6: the start()/autostart lifecycle
// (fail-fast before start), callback-mode submissions, spill routing when
// a home ring fills, and completion ordering under concurrent
// swap_model() + submit across shards — a submission entering after a
// swap returns is never scored by the retired snapshot.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "data/api_vocab.hpp"
#include "features/transform.hpp"
#include "math/rng.hpp"
#include "runtime/clock.hpp"
#include "serve/scoring_service.hpp"

namespace mev::serve {
namespace {

constexpr std::size_t kDim = data::kNumApiFeatures;

math::Matrix random_counts(std::size_t rows, std::uint64_t seed) {
  math::Rng rng(seed);
  math::Matrix m(rows, kDim);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.poisson(3.0));
  return m;
}

features::FeaturePipeline make_pipeline(std::uint64_t seed) {
  auto transform = std::make_unique<features::CountTransform>();
  transform->fit(random_counts(64, seed));
  return features::FeaturePipeline(data::ApiVocab::instance(),
                                   std::move(transform));
}

std::shared_ptr<nn::Network> make_network(std::uint64_t seed) {
  nn::MlpConfig cfg;
  cfg.dims = {kDim, 16, 2};
  cfg.seed = seed;
  return std::make_shared<nn::Network>(nn::make_mlp(cfg));
}

TEST(ShardedIngress, SubmitBeforeStartFailsFast) {
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.autostart = false;
  ScoringService service(make_pipeline(7), make_network(11), cfg);

  // Regression: a submission into a never-started service must fail fast
  // with an already-ready rejection — not queue into a service nobody is
  // pumping and hang the caller.
  ScoreFuture early = service.submit(random_counts(2, 1));
  ASSERT_EQ(early.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(early.get().rejected, RejectReason::kShuttingDown);
  EXPECT_FALSE(service.readiness().ready);
  EXPECT_EQ(service.readiness().reason, "not started");
  EXPECT_EQ(service.stats().rejected_shutting_down, 1u);

  EXPECT_TRUE(service.start());
  EXPECT_FALSE(service.start());  // idempotent: already running
  const ScoreResult scored = service.score(random_counts(2, 2));
  EXPECT_TRUE(scored.ok());
  EXPECT_EQ(scored.verdicts.size(), 2u);
}

TEST(ShardedIngress, ShutdownBeforeStartIsClean) {
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.autostart = false;
  ScoringService service(make_pipeline(7), make_network(11), cfg);
  service.shutdown();
  EXPECT_FALSE(service.start());  // stopped, not restartable
  EXPECT_EQ(service.submit(random_counts(1, 3)).get().rejected,
            RejectReason::kShuttingDown);
}

TEST(ShardedIngress, CallbackModeParityWithFutureMode) {
  features::FeaturePipeline pipeline = make_pipeline(7);
  std::shared_ptr<nn::Network> network = make_network(11);
  ServiceConfig cfg;
  cfg.workers = 0;
  ScoringService service(pipeline, network, cfg);

  const math::Matrix counts = random_counts(6, 4);
  struct Ctx {
    ScoreResult result;
    int calls = 0;
  } ctx;
  service.submit_with_callback(
      counts, {},
      [](void* raw, ScoreResult&& r) {
        auto* c = static_cast<Ctx*>(raw);
        c->result = std::move(r);
        ++c->calls;
      },
      &ctx);
  ScoreFuture future = service.submit(counts);
  while (ctx.calls == 0) service.pump(/*force=*/true);
  const ScoreResult via_future = future.get();

  ASSERT_EQ(ctx.calls, 1);
  ASSERT_TRUE(ctx.result.ok());
  ASSERT_TRUE(via_future.ok());
  ASSERT_EQ(ctx.result.verdicts.size(), via_future.verdicts.size());
  for (std::size_t i = 0; i < via_future.verdicts.size(); ++i) {
    EXPECT_EQ(ctx.result.verdicts[i].predicted_class,
              via_future.verdicts[i].predicted_class);
    EXPECT_EQ(ctx.result.verdicts[i].malware_confidence,
              via_future.verdicts[i].malware_confidence);
  }
}

TEST(ShardedIngress, CallbackRejectionRunsInline) {
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.autostart = false;
  ScoringService service(make_pipeline(7), make_network(11), cfg);

  RejectReason seen = RejectReason::kNone;
  service.submit_with_callback(
      random_counts(1, 5), {},
      [](void* raw, ScoreResult&& r) {
        *static_cast<RejectReason*>(raw) = r.rejected;
      },
      &seen);
  // Resolved synchronously on this thread, before submit returns.
  EXPECT_EQ(seen, RejectReason::kShuttingDown);
}

TEST(ShardedIngress, SpillsPastFullHomeShardThenRejects) {
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.shards = 2;
  cfg.shard_capacity = 2;  // tiny rings: force spill from one submitter
  cfg.max_queue_rows = 1024;
  ScoringService service(make_pipeline(7), make_network(11), cfg);

  // One thread hashes to one home shard; pushes 3..4 overflow into the
  // neighbor ring, the 5th finds every ring full.
  std::vector<ScoreFuture> futures;
  for (int i = 0; i < 5; ++i)
    futures.push_back(service.submit(random_counts(1, 10 + i)));

  const ServiceStats mid = service.stats();
  EXPECT_EQ(mid.accepted_requests, 4u);
  EXPECT_GE(mid.spilled_submissions, 1u);
  EXPECT_EQ(mid.rejected_queue_full, 1u);

  std::size_t ok = 0, queue_full = 0;
  for (auto& future : futures) {
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready)
      service.pump(/*force=*/true);
    const ScoreResult result = future.get();
    if (result.ok()) ++ok;
    if (result.rejected == RejectReason::kQueueFull) ++queue_full;
  }
  EXPECT_EQ(ok, 4u);
  EXPECT_EQ(queue_full, 1u);
}

TEST(ShardedIngress, ShardCountDefaultsToWorkers) {
  ServiceConfig cfg;
  cfg.workers = 3;
  ScoringService with_workers(make_pipeline(7), make_network(11), cfg);
  EXPECT_EQ(with_workers.shard_count(), 3u);

  cfg.workers = 0;
  cfg.shards = 5;
  ScoringService manual(make_pipeline(7), make_network(11), cfg);
  EXPECT_EQ(manual.shard_count(), 5u);
}

// Satellite 3: completion ordering under concurrent swap_model + submit
// across shards. Every submission records the published version it saw
// before submitting; its verdict must come from that snapshot or a newer
// one — never from one retired before the submission began. Alongside,
// the exactly-once ledger must balance.
TEST(ShardedIngress, NoVerdictFromRetiredSnapshotAfterSwapReturns) {
  features::FeaturePipeline pipeline = make_pipeline(7);
  std::shared_ptr<nn::Network> network = make_network(11);
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.shards = 4;
  cfg.max_batch_rows = 8;
  cfg.max_queue_delay_ms = 0;
  ScoringService service(pipeline, network, cfg);

  constexpr std::size_t kSubmitters = 4;
  constexpr int kPerThread = 60;
  constexpr int kSwaps = 6;

  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> completed{0};

  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kSubmitters; ++t)
    submitters.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t floor = service.model_version();
        ScoreFuture future =
            service.submit(random_counts(1 + (i % 3), t * 1000 + i));
        const ScoreResult result = future.get();
        ASSERT_TRUE(result.ok());
        if (result.model_version < floor)
          violations.fetch_add(1, std::memory_order_relaxed);
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });

  std::thread swapper([&] {
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    for (int s = 0; s < kSwaps; ++s) {
      const std::uint64_t v =
          service.swap_model(make_pipeline(7), make_network(100 + s));
      EXPECT_EQ(service.model_version(), v);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  go.store(true, std::memory_order_release);
  for (auto& t : submitters) t.join();
  swapper.join();
  service.shutdown();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(completed.load(), kSubmitters * kPerThread);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted_requests, kSubmitters * kPerThread);
  EXPECT_EQ(stats.completed_requests, kSubmitters * kPerThread);
  EXPECT_EQ(stats.rejected_total(), 0u);
  EXPECT_EQ(stats.model_swaps, static_cast<std::uint64_t>(kSwaps));
}

}  // namespace
}  // namespace mev::serve
