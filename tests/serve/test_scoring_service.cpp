// ScoringService behavior: parity with sequential scanning (bit-identical
// verdicts for any worker count / batch window), deterministic batching
// and deadline policy under FakeClock (manual-pump mode), backpressure,
// shutdown semantics, and hot-swap under concurrency.
#include "serve/scoring_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "data/api_vocab.hpp"
#include "features/transform.hpp"
#include "math/rng.hpp"
#include "runtime/clock.hpp"

namespace mev::serve {
namespace {

constexpr std::size_t kDim = data::kNumApiFeatures;

math::Matrix random_counts(std::size_t rows, std::uint64_t seed) {
  math::Rng rng(seed);
  math::Matrix m(rows, kDim);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.poisson(3.0));
  return m;
}

features::FeaturePipeline make_pipeline(std::uint64_t seed) {
  auto transform = std::make_unique<features::CountTransform>();
  transform->fit(random_counts(64, seed));
  return features::FeaturePipeline(data::ApiVocab::instance(),
                                   std::move(transform));
}

std::shared_ptr<nn::Network> make_network(std::uint64_t seed) {
  nn::MlpConfig cfg;
  cfg.dims = {kDim, 16, 2};
  cfg.seed = seed;
  return std::make_shared<nn::Network>(nn::make_mlp(cfg));
}

/// An untrained (but deterministic) model is all parity tests need.
struct Fixture {
  features::FeaturePipeline pipeline = make_pipeline(7);
  std::shared_ptr<nn::Network> network = make_network(11);
  core::MalwareDetector reference{pipeline, network};

  ScoringService make_service(ServiceConfig config) {
    return ScoringService(pipeline, network, config);
  }
};

void expect_same_verdicts(const std::vector<core::Verdict>& got,
                          const std::vector<core::Verdict>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].predicted_class, want[i].predicted_class) << i;
    // Bit-identical, not approximately equal: the service runs the same
    // scan_counts code path and per-row results are independent of batch
    // composition.
    EXPECT_EQ(got[i].malware_confidence, want[i].malware_confidence) << i;
  }
}

TEST(ScoringService, ManualModeParityWithSequentialScan) {
  Fixture f;
  runtime::FakeClock clock;
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.max_batch_rows = 8;
  cfg.clock = &clock;
  auto service = f.make_service(cfg);

  const math::Matrix all = random_counts(20, 42);
  std::vector<ScoreFuture> futures;
  // Mixed request sizes: 1, 2, 3, ... rows — batches will straddle them.
  std::size_t row = 0;
  for (std::size_t n = 1; row + n <= all.rows(); ++n) {
    futures.push_back(service.submit(all.slice_rows(row, row + n)));
    row += n;
  }
  while (service.pump(/*force=*/true) > 0) {
  }

  const auto want = f.reference.scan_counts(all);
  std::size_t offset = 0;
  for (auto& future : futures) {
    ScoreResult result = future.get();
    ASSERT_TRUE(result.ok());
    const std::vector<core::Verdict> expected(
        want.begin() + offset, want.begin() + offset + result.verdicts.size());
    expect_same_verdicts(result.verdicts, expected);
    offset += result.verdicts.size();
  }
  EXPECT_EQ(offset, row);
}

TEST(ScoringService, ThreadedParityAnyWorkerCountAnyWindow) {
  Fixture f;
  const math::Matrix all = random_counts(120, 43);
  const auto want = f.reference.scan_counts(all);

  for (std::size_t workers : {1u, 4u}) {
    for (std::uint64_t window_ms : {0u, 2u}) {
      ServiceConfig cfg;
      cfg.workers = workers;
      cfg.max_batch_rows = 16;
      cfg.max_queue_delay_ms = window_ms;
      auto service = f.make_service(cfg);
      std::vector<ScoreFuture> futures;
      for (std::size_t r = 0; r < all.rows(); r += 3)
        futures.push_back(
            service.submit(all.slice_rows(r, std::min(r + 3, all.rows()))));
      std::size_t offset = 0;
      for (auto& future : futures) {
        ScoreResult result = future.get();
        ASSERT_TRUE(result.ok());
        const std::vector<core::Verdict> expected(
            want.begin() + offset,
            want.begin() + offset + result.verdicts.size());
        expect_same_verdicts(result.verdicts, expected);
        offset += result.verdicts.size();
      }
      EXPECT_EQ(offset, all.rows());
    }
  }
}

TEST(ScoringService, FullBatchFlushesWithoutClockAdvance) {
  Fixture f;
  runtime::FakeClock clock;
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.max_batch_rows = 4;
  cfg.max_queue_delay_ms = 100;
  cfg.clock = &clock;
  auto service = f.make_service(cfg);

  auto future = service.submit(random_counts(4, 1));
  // Batch is full: scored on the next pump with no time passing.
  EXPECT_EQ(service.pump(), 4u);
  EXPECT_TRUE(future.get().ok());
}

TEST(ScoringService, PartialBatchWaitsForWindowUnderFakeClock) {
  Fixture f;
  runtime::FakeClock clock;
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.max_batch_rows = 64;
  cfg.max_queue_delay_ms = 5;
  cfg.clock = &clock;
  auto service = f.make_service(cfg);

  auto future = service.submit(random_counts(2, 2));
  EXPECT_EQ(service.pump(), 0u);  // window not elapsed, no flush
  clock.advance(5);
  EXPECT_EQ(service.pump(), 2u);  // partial batch flushed by time
  EXPECT_TRUE(future.get().ok());
  const auto stats = service.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.completed_rows, 2u);
}

TEST(ScoringService, ExpiredDeadlineIsRejectedNotScored) {
  Fixture f;
  runtime::FakeClock clock(50);
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.max_queue_delay_ms = 100;
  cfg.clock = &clock;
  auto service = f.make_service(cfg);

  SubmitOptions options;
  options.deadline_ms = 5;
  auto doomed = service.submit(random_counts(3, 3), options);
  auto alive = service.submit(random_counts(2, 4));
  clock.advance(10);  // past the deadline, inside the batch window
  service.pump(/*force=*/true);

  const ScoreResult rejected = doomed.get();
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.rejected, RejectReason::kDeadline);
  EXPECT_TRUE(rejected.verdicts.empty());
  EXPECT_TRUE(alive.get().ok());

  const auto stats = service.stats();
  EXPECT_EQ(stats.rejected_deadline, 1u);
  EXPECT_EQ(stats.expired_in_queue, 1u);  // aged out waiting in the batcher
  EXPECT_EQ(stats.completed_requests, 1u);
  EXPECT_EQ(stats.completed_rows, 2u);  // the doomed rows never ran
}

TEST(ScoringService, ExpiredAbsoluteDeadlineRejectedAtAdmission) {
  Fixture f;
  runtime::FakeClock clock(100);
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.clock = &clock;
  auto service = f.make_service(cfg);

  // The propagation form: an upstream hop forwards an absolute deadline
  // that has already passed. Rejected synchronously, before admission
  // charges the queue.
  SubmitOptions options;
  options.deadline_at_ms = 50;
  auto dead_on_arrival = service.submit(random_counts(2, 30), options);
  ASSERT_EQ(dead_on_arrival.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(dead_on_arrival.get().rejected, RejectReason::kDeadline);

  const auto stats = service.stats();
  EXPECT_EQ(stats.rejected_deadline, 1u);
  EXPECT_EQ(stats.expired_at_admission, 1u);
  EXPECT_EQ(stats.accepted_requests, 0u);  // never consumed queue capacity
}

TEST(ScoringService, EarlierOfRelativeAndAbsoluteDeadlineWins) {
  Fixture f;
  runtime::FakeClock clock(100);
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.max_queue_delay_ms = 1000;
  cfg.clock = &clock;
  auto service = f.make_service(cfg);

  // Absolute 110 beats relative 100+100: expired once the clock hits 110.
  SubmitOptions tight_absolute;
  tight_absolute.deadline_ms = 100;
  tight_absolute.deadline_at_ms = 110;
  auto a = service.submit(random_counts(1, 31), tight_absolute);
  // Relative 100+5 beats absolute 500.
  SubmitOptions tight_relative;
  tight_relative.deadline_ms = 5;
  tight_relative.deadline_at_ms = 500;
  auto b = service.submit(random_counts(1, 32), tight_relative);
  // A roomy deadline in the same batch survives.
  SubmitOptions roomy;
  roomy.deadline_at_ms = 10'000;
  auto c = service.submit(random_counts(1, 33), roomy);

  clock.advance(15);  // now 115: past both tight deadlines
  service.pump(/*force=*/true);
  EXPECT_EQ(a.get().rejected, RejectReason::kDeadline);
  EXPECT_EQ(b.get().rejected, RejectReason::kDeadline);
  EXPECT_TRUE(c.get().ok());

  const auto stats = service.stats();
  EXPECT_EQ(stats.rejected_deadline, 2u);
  EXPECT_EQ(stats.expired_in_queue, 2u);
  EXPECT_EQ(stats.completed_rows, 1u);
}

TEST(ScoringService, QueueFullRejectsImmediately) {
  Fixture f;
  runtime::FakeClock clock;
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.max_queue_rows = 8;
  cfg.clock = &clock;
  auto service = f.make_service(cfg);

  auto accepted = service.submit(random_counts(8, 5));
  auto rejected = service.submit(random_counts(1, 6));
  ASSERT_EQ(rejected.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(rejected.get().rejected, RejectReason::kQueueFull);

  while (service.pump(true) > 0) {
  }
  EXPECT_TRUE(accepted.get().ok());
  const auto stats = service.stats();
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_EQ(stats.accepted_requests, 1u);
}

TEST(ScoringService, ShutdownDrainScoresPending) {
  Fixture f;
  runtime::FakeClock clock;
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.max_queue_delay_ms = 1000;
  cfg.clock = &clock;
  auto service = f.make_service(cfg);

  auto pending = service.submit(random_counts(3, 7));
  service.shutdown(/*drain=*/true);
  EXPECT_TRUE(pending.get().ok());

  auto late = service.submit(random_counts(1, 8));
  EXPECT_EQ(late.get().rejected, RejectReason::kShuttingDown);
  EXPECT_EQ(service.stats().rejected_shutting_down, 1u);
}

TEST(ScoringService, ShutdownWithoutDrainRejectsPending) {
  Fixture f;
  runtime::FakeClock clock;
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.max_queue_delay_ms = 1000;
  cfg.clock = &clock;
  auto service = f.make_service(cfg);

  auto pending = service.submit(random_counts(3, 9));
  service.shutdown(/*drain=*/false);
  EXPECT_EQ(pending.get().rejected, RejectReason::kShuttingDown);
  EXPECT_EQ(service.stats().completed_rows, 0u);
}

TEST(ScoringService, DestructorDrainsInFlightWork) {
  Fixture f;
  ScoreFuture future;
  {
    ServiceConfig cfg;
    cfg.workers = 2;
    auto service = f.make_service(cfg);
    future = service.submit(random_counts(5, 10));
  }  // ~ScoringService: drain
  EXPECT_TRUE(future.get().ok());
}

TEST(ScoringService, EmptySubmissionCompletesImmediately) {
  Fixture f;
  runtime::FakeClock clock;
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.clock = &clock;
  auto service = f.make_service(cfg);
  auto future = service.submit(math::Matrix(0, kDim));
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const ScoreResult result = future.get();
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.verdicts.empty());
  EXPECT_EQ(result.model_version, 1u);
}

TEST(ScoringService, WrongColumnCountThrows) {
  Fixture f;
  ServiceConfig cfg;
  cfg.workers = 0;
  auto service = f.make_service(cfg);
  EXPECT_THROW(service.submit(math::Matrix(1, 10)), std::invalid_argument);
}

TEST(ScoringService, HotSwapPublishesNewModelAtomically) {
  Fixture f;
  runtime::FakeClock clock;
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.clock = &clock;
  auto service = f.make_service(cfg);
  EXPECT_EQ(service.model_version(), 1u);

  const math::Matrix counts = random_counts(4, 11);
  const ScoreResult before = service.score(counts);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.model_version, 1u);
  expect_same_verdicts(before.verdicts, f.reference.scan_counts(counts));

  // Roll out a different model (e.g. a retrained/distilled defender).
  auto swapped_network = make_network(99);
  EXPECT_EQ(service.swap_model(make_pipeline(7), swapped_network), 2u);
  EXPECT_EQ(service.model_version(), 2u);

  const ScoreResult after = service.score(counts);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.model_version, 2u);
  core::MalwareDetector swapped_reference(make_pipeline(7), swapped_network);
  expect_same_verdicts(after.verdicts, swapped_reference.scan_counts(counts));
}

TEST(ScoringService, HotSwapRejectsMismatchedModel) {
  Fixture f;
  ServiceConfig cfg;
  cfg.workers = 0;
  auto service = f.make_service(cfg);
  // Network input dim does not match the pipeline: detector validation.
  nn::MlpConfig bad;
  bad.dims = {10, 2};
  auto bad_network = std::make_shared<nn::Network>(nn::make_mlp(bad));
  EXPECT_THROW(service.swap_model(make_pipeline(7), std::move(bad_network)),
               std::invalid_argument);
}

TEST(ScoringService, ConcurrentSubmitAndHotSwapExactlyOnce) {
  Fixture f;
  auto network_b = make_network(99);
  core::MalwareDetector reference_b(make_pipeline(7), network_b);

  ServiceConfig cfg;
  cfg.workers = 4;
  cfg.max_batch_rows = 8;
  cfg.max_queue_delay_ms = 1;
  cfg.max_queue_rows = 1u << 20;  // no backpressure in this test
  auto service = f.make_service(cfg);

  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 40;
  std::vector<std::vector<math::Matrix>> inputs(kProducers);
  std::vector<std::vector<ScoreFuture>> futures(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p)
    for (std::size_t i = 0; i < kPerProducer; ++i)
      inputs[p].push_back(random_counts(1 + (i % 3), 1000 + p * 100 + i));

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p)
    producers.emplace_back([&, p] {
      for (auto& m : inputs[p]) futures[p].push_back(service.submit(m));
    });

  // Swap back and forth while traffic flows.
  for (int swap = 0; swap < 6; ++swap) {
    service.swap_model(make_pipeline(7),
                       swap % 2 == 0 ? network_b : f.network);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& t : producers) t.join();

  std::size_t completed = 0;
  for (std::size_t p = 0; p < kProducers; ++p)
    for (std::size_t i = 0; i < futures[p].size(); ++i) {
      ScoreResult result = futures[p][i].get();
      ASSERT_TRUE(result.ok());
      ++completed;
      // Whichever snapshot scored it, the verdicts must match that
      // snapshot's sequential reference bit-for-bit.
      const auto want_a = f.reference.scan_counts(inputs[p][i]);
      const auto want_b = reference_b.scan_counts(inputs[p][i]);
      ASSERT_EQ(result.verdicts.size(), want_a.size());
      bool matches_a = true, matches_b = true;
      for (std::size_t r = 0; r < result.verdicts.size(); ++r) {
        matches_a &= result.verdicts[r].malware_confidence ==
                     want_a[r].malware_confidence;
        matches_b &= result.verdicts[r].malware_confidence ==
                     want_b[r].malware_confidence;
      }
      EXPECT_TRUE(matches_a || matches_b) << "p=" << p << " i=" << i;
    }
  EXPECT_EQ(completed, kProducers * kPerProducer);

  service.shutdown();
  const auto stats = service.stats();
  // Exactly-once: every accepted request completed (plus nothing extra).
  EXPECT_EQ(stats.accepted_requests, completed);
  EXPECT_EQ(stats.completed_requests, completed);
  EXPECT_EQ(stats.rejected_total(), 0u);
  EXPECT_EQ(stats.model_swaps, 6u);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_EQ(stats.e2e_latency_us.count(), completed);
}

TEST(ScoringService, ConcurrentCallbackSubmittersExactlyOnce) {
  // The frontend's path: submit_with_callback() from many non-worker
  // threads at once, completions racing on worker threads. Every
  // submission's callback must fire exactly once — no drops, no
  // double-fires — and per-submission verdict counts must match the rows
  // submitted. Runs under the TSan stress filter (ScoringService.Concurrent*).
  Fixture f;
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.max_batch_rows = 8;
  cfg.max_queue_delay_ms = 1;
  cfg.max_queue_rows = 1u << 20;  // no backpressure: every submit lands
  auto service = f.make_service(cfg);

  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 50;
  struct Completion {
    std::atomic<int> fires{0};
    std::size_t rows = 0;
    std::size_t got_verdicts = 0;
    RejectReason rejected = RejectReason::kNone;
  };
  std::vector<std::vector<Completion>> completions(kProducers);
  for (auto& per_producer : completions)
    per_producer = std::vector<Completion>(kPerProducer);

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p)
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const std::size_t rows = 1 + (i % 3);
        completions[p][i].rows = rows;
        service.submit_with_callback(
            random_counts(rows, 5000 + p * 1000 + i), SubmitOptions{},
            [](void* ctx, ScoreResult&& result) {
              auto* completion = static_cast<Completion*>(ctx);
              completion->fires.fetch_add(1, std::memory_order_relaxed);
              completion->got_verdicts = result.verdicts.size();
              completion->rejected = result.rejected;
            },
            &completions[p][i]);
      }
    });
  for (auto& t : producers) t.join();
  service.shutdown(/*drain=*/true);

  std::size_t completed = 0;
  for (std::size_t p = 0; p < kProducers; ++p)
    for (std::size_t i = 0; i < kPerProducer; ++i) {
      const Completion& c = completions[p][i];
      // Exactly once, from whichever thread resolved it.
      ASSERT_EQ(c.fires.load(), 1) << "p=" << p << " i=" << i;
      ASSERT_EQ(c.rejected, RejectReason::kNone) << "p=" << p << " i=" << i;
      EXPECT_EQ(c.got_verdicts, c.rows);
      ++completed;
    }
  EXPECT_EQ(completed, kProducers * kPerProducer);
  const auto stats = service.stats();
  EXPECT_EQ(stats.accepted_requests, completed);
  EXPECT_EQ(stats.completed_requests, completed);
  EXPECT_EQ(stats.rejected_total(), 0u);
}

TEST(ScoringService, StatsHistogramsTrackBatchesAndLatency) {
  Fixture f;
  runtime::FakeClock clock(1000);
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.max_batch_rows = 4;
  cfg.max_queue_delay_ms = 10;
  cfg.clock = &clock;
  auto service = f.make_service(cfg);

  auto a = service.submit(random_counts(4, 21));  // full batch
  service.pump();
  auto b = service.submit(random_counts(2, 22));  // partial, flushed by time
  clock.advance(10);
  service.pump();
  EXPECT_TRUE(a.get().ok());
  EXPECT_TRUE(b.get().ok());

  const auto stats = service.stats();
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.batch_rows.count(), 2u);
  EXPECT_EQ(stats.batch_rows.max(), 4u);
  EXPECT_EQ(stats.queue_delay_us.count(), 2u);
  // The partial batch waited 10ms (FakeClock-derived microseconds).
  EXPECT_EQ(stats.queue_delay_us.max(), 10000u);
  EXPECT_EQ(stats.e2e_latency_us.count(), 2u);
  const LatencySummary s = summarize(stats.e2e_latency_us);
  EXPECT_LE(s.p50, s.p99);
}

}  // namespace
}  // namespace mev::serve
