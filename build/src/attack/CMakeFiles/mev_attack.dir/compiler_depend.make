# Empty compiler generated dependencies file for mev_attack.
# This may be replaced when dependencies are built.
