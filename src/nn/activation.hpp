// Activation functions for dense layers.
#pragma once

#include <cstdint>
#include <string>

#include "math/matrix.hpp"

namespace mev::nn {

enum class Activation : std::uint8_t {
  kIdentity = 0,
  kRelu = 1,
  kSigmoid = 2,
  kTanh = 3,
  kLeakyRelu = 4,  // slope 0.01 for x < 0
};

/// Applies the activation elementwise in place.
void apply_activation(Activation act, math::Matrix& z);

/// Given pre-activation z and activation output a = act(z), multiplies
/// grad (elementwise, in place) by act'(z). `a` and `z` must be the values
/// cached from the forward pass.
void apply_activation_grad(Activation act, const math::Matrix& z,
                           const math::Matrix& a, math::Matrix& grad);

std::string to_string(Activation act);

/// Parses the string produced by to_string. Throws on unknown names.
Activation activation_from_string(const std::string& name);

}  // namespace mev::nn
