// Dynamic micro-batching policy: coalesce queued requests into batches of
// up to `max_batch_rows` rows, but never hold a request longer than
// `max_queue_delay_ms` waiting for co-riders. All timing flows through
// caller-supplied clock readings, so the policy is a plain single-threaded
// state machine — unit-testable with runtime::FakeClock and shared by the
// real worker pool and the manual pump() mode.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "serve/request.hpp"

namespace mev::serve {

struct BatcherConfig {
  /// Flush as soon as pending rows reach this many. A single request
  /// larger than the cap forms its own (oversized) batch — requests are
  /// never split across batches.
  std::size_t max_batch_rows = 64;
  /// Flush a partial batch once the oldest pending request has waited
  /// this long (0 = flush immediately, i.e. no coalescing delay).
  std::uint64_t max_queue_delay_ms = 2;
};

/// A formed batch: whole requests, FIFO order.
struct Batch {
  std::vector<Request> requests;
  std::size_t rows = 0;
};

class MicroBatcher {
 public:
  explicit MicroBatcher(BatcherConfig config);

  /// Enqueues a request (FIFO). The caller has already admission-checked.
  void add(Request request);

  std::size_t pending_requests() const noexcept { return pending_.size(); }
  std::size_t pending_rows() const noexcept { return pending_rows_; }
  bool empty() const noexcept { return pending_.empty(); }

  /// Moves every pending request whose deadline has passed into `expired`
  /// (FIFO order). The service fails these with RejectReason::kDeadline.
  void take_expired(std::uint64_t now_ms, std::vector<Request>& expired);

  /// Forms the next batch if the flush condition holds: pending rows
  /// >= max_batch_rows, the oldest request has waited >= max_queue_delay,
  /// or `force` (drain/shutdown). Returns std::nullopt otherwise.
  /// take_expired() should run first so expired requests are not scored.
  std::optional<Batch> poll(std::uint64_t now_ms, bool force = false);

  /// Milliseconds until the next action is due — the oldest pending
  /// request hitting max_queue_delay or the earliest per-request deadline
  /// (0 when already due); std::nullopt when nothing is pending. Drives
  /// the worker's timed wait.
  std::optional<std::uint64_t> ms_until_flush(std::uint64_t now_ms) const;

  const BatcherConfig& config() const noexcept { return config_; }

 private:
  BatcherConfig config_;
  std::deque<Request> pending_;
  std::size_t pending_rows_ = 0;
};

}  // namespace mev::serve
