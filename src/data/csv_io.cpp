#include "data/csv_io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace mev::data {

void write_csv(const CountDataset& ds, std::ostream& os) {
  os << "label";
  for (std::size_t c = 0; c < ds.counts.cols(); ++c) os << ",f" << c;
  os << '\n';
  for (std::size_t r = 0; r < ds.counts.rows(); ++r) {
    os << ds.labels[r];
    const auto row = ds.counts.row(r);
    for (float v : row) os << ',' << v;
    os << '\n';
  }
}

void write_csv(const CountDataset& ds, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_csv: cannot open " + path);
  write_csv(ds, os);
  if (!os) throw std::runtime_error("write_csv: write failure on " + path);
}

CountDataset read_csv(std::istream& is) {
  CountDataset ds;
  std::string line;
  if (!std::getline(is, line))
    throw std::runtime_error("read_csv: empty input");
  // Header: count columns.
  std::size_t cols = 0;
  for (char ch : line)
    if (ch == ',') ++cols;
  if (cols == 0) throw std::runtime_error("read_csv: no feature columns");

  std::vector<float> row(cols);
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const char* p = line.data();
    const char* end = line.data() + line.size();
    int label = 0;
    auto res = std::from_chars(p, end, label);
    if (res.ec != std::errc{})
      throw std::runtime_error("read_csv: bad label field");
    if (label != kCleanLabel && label != kMalwareLabel)
      throw std::runtime_error("read_csv: label out of range");
    p = res.ptr;
    for (std::size_t c = 0; c < cols; ++c) {
      if (p >= end || *p != ',')
        throw std::runtime_error("read_csv: ragged row");
      ++p;
      float v = 0.0f;
      auto fres = std::from_chars(p, end, v);
      if (fres.ec != std::errc{})
        throw std::runtime_error("read_csv: bad numeric field");
      p = fres.ptr;
      row[c] = v;
    }
    if (p != end) throw std::runtime_error("read_csv: trailing characters");
    ds.counts.append_row(row);
    ds.labels.push_back(label);
  }
  return ds;
}

CountDataset read_csv(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("read_csv: cannot open " + path);
  return read_csv(is);
}

}  // namespace mev::data
