file(REMOVE_RECURSE
  "CMakeFiles/mev_nn.dir/activation.cpp.o"
  "CMakeFiles/mev_nn.dir/activation.cpp.o.d"
  "CMakeFiles/mev_nn.dir/layer.cpp.o"
  "CMakeFiles/mev_nn.dir/layer.cpp.o.d"
  "CMakeFiles/mev_nn.dir/loss.cpp.o"
  "CMakeFiles/mev_nn.dir/loss.cpp.o.d"
  "CMakeFiles/mev_nn.dir/network.cpp.o"
  "CMakeFiles/mev_nn.dir/network.cpp.o.d"
  "CMakeFiles/mev_nn.dir/optimizer.cpp.o"
  "CMakeFiles/mev_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/mev_nn.dir/trainer.cpp.o"
  "CMakeFiles/mev_nn.dir/trainer.cpp.o.d"
  "libmev_nn.a"
  "libmev_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mev_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
