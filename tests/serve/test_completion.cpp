// CompletionArena + ScoreFuture lifecycle: acquire/complete/take,
// abandoned handles from both sides of the race, error propagation, slot
// recycling (steady state never grows), and block growth under many
// outstanding results. Concurrency cases are TSan-sized.
#include "serve/completion.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mev::serve {
namespace {

ScoreResult make_result(std::uint64_t version) {
  ScoreResult r;
  r.model_version = version;
  r.verdicts.resize(1);
  return r;
}

TEST(CompletionArena, CompleteThenTakeRoundTrips) {
  auto arena = std::make_shared<CompletionArena>(4);
  const CompletionTicket t = arena->acquire();
  EXPECT_EQ(arena->outstanding(), 1u);
  EXPECT_FALSE(arena->ready(t));

  arena->complete(t, make_result(7));
  EXPECT_TRUE(arena->ready(t));
  const ScoreResult r = arena->take(t);
  EXPECT_EQ(r.model_version, 7u);
  EXPECT_EQ(arena->outstanding(), 0u);
}

TEST(CompletionArena, SlotsAreRecycledSteadyStateNeverGrows) {
  auto arena = std::make_shared<CompletionArena>(8);
  const std::size_t capacity = arena->capacity();
  for (int i = 0; i < 1000; ++i) {
    const CompletionTicket t = arena->acquire();
    arena->complete(t, make_result(static_cast<std::uint64_t>(i)));
    EXPECT_EQ(arena->take(t).model_version, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(arena->capacity(), capacity);  // all traffic reused 8 slots
}

TEST(CompletionArena, GrowsWhenResultsAreHeldOutstanding) {
  auto arena = std::make_shared<CompletionArena>(4);
  std::vector<CompletionTicket> held;
  for (int i = 0; i < 64; ++i) held.push_back(arena->acquire());
  EXPECT_GE(arena->capacity(), 64u);
  EXPECT_EQ(arena->outstanding(), 64u);
  for (std::size_t i = 0; i < held.size(); ++i) {
    arena->complete(held[i], make_result(i));
    EXPECT_EQ(arena->take(held[i]).model_version, i);
  }
  EXPECT_EQ(arena->outstanding(), 0u);
}

TEST(CompletionArena, RecycledSlotGetsFreshGeneration) {
  auto arena = std::make_shared<CompletionArena>(1);
  const CompletionTicket first = arena->acquire();
  arena->complete(first, make_result(1));
  (void)arena->take(first);
  const CompletionTicket second = arena->acquire();
  EXPECT_EQ(second.index, first.index);  // one slot: must be recycled
  EXPECT_NE(second.generation, first.generation);
  // The stale first ticket reads as resolved, not pending, so a buggy
  // double-wait cannot hang.
  EXPECT_TRUE(arena->ready(first));
  arena->complete(second, make_result(2));
  EXPECT_EQ(arena->take(second).model_version, 2u);
}

TEST(CompletionArena, ErrorIsRethrownByTake) {
  auto arena = std::make_shared<CompletionArena>(4);
  const CompletionTicket t = arena->acquire();
  arena->complete_error(
      t, std::make_exception_ptr(std::runtime_error("scan failed")));
  EXPECT_THROW((void)arena->take(t), std::runtime_error);
  EXPECT_EQ(arena->outstanding(), 0u);
}

TEST(CompletionArena, AbandonBeforeCompleteRecyclesOnComplete) {
  auto arena = std::make_shared<CompletionArena>(4);
  const CompletionTicket t = arena->acquire();
  arena->abandon(t);                      // handle dropped first
  EXPECT_EQ(arena->outstanding(), 1u);    // completer still owns the slot
  arena->complete(t, make_result(3));     // second arrival recycles
  EXPECT_EQ(arena->outstanding(), 0u);
}

TEST(CompletionArena, AbandonAfterCompleteRecyclesImmediately) {
  auto arena = std::make_shared<CompletionArena>(4);
  const CompletionTicket t = arena->acquire();
  arena->complete(t, make_result(4));
  arena->abandon(t);  // result never read: dropped + recycled
  EXPECT_EQ(arena->outstanding(), 0u);
}

TEST(ScoreFuture, DefaultConstructedIsInvalid) {
  ScoreFuture f;
  EXPECT_FALSE(f.valid());
  EXPECT_THROW((void)f.get(), std::future_error);
}

TEST(ScoreFuture, GetConsumesAndInvalidates) {
  auto arena = std::make_shared<CompletionArena>(4);
  const CompletionTicket t = arena->acquire();
  ScoreFuture f(arena, t);
  EXPECT_TRUE(f.valid());
  EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::timeout);
  arena->complete(t, make_result(9));
  EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f.get().model_version, 9u);
  EXPECT_FALSE(f.valid());
  EXPECT_THROW((void)f.get(), std::future_error);
}

TEST(ScoreFuture, DroppedFutureDoesNotLeakItsSlot) {
  auto arena = std::make_shared<CompletionArena>(4);
  const CompletionTicket t = arena->acquire();
  { ScoreFuture f(arena, t); }    // dropped unread while pending
  arena->complete(t, make_result(5));
  EXPECT_EQ(arena->outstanding(), 0u);
}

TEST(ScoreFuture, MoveTransfersOwnership) {
  auto arena = std::make_shared<CompletionArena>(4);
  const CompletionTicket t = arena->acquire();
  ScoreFuture a(arena, t);
  ScoreFuture b(std::move(a));
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): probing
  EXPECT_TRUE(b.valid());
  arena->complete(t, make_result(6));
  EXPECT_EQ(b.get().model_version, 6u);
}

TEST(ScoreFuture, OutlivesTheArenaOwner) {
  // The service-destroyed-first shape: the shared_ptr inside the future
  // keeps the arena alive after the original owner lets go.
  ScoreFuture f;
  {
    auto arena = std::make_shared<CompletionArena>(4);
    const CompletionTicket t = arena->acquire();
    f = ScoreFuture(arena, t);
    arena->complete(t, make_result(11));
  }
  EXPECT_EQ(f.get().model_version, 11u);
}

TEST(CompletionArena, ConcurrentCompletersAndConsumers) {
  static constexpr std::size_t kThreads = 4;
  static constexpr int kPerThread = 2000;
  auto arena = std::make_shared<CompletionArena>(16);

  std::vector<std::thread> pairs;
  std::atomic<std::uint64_t> sum{0};
  for (std::size_t th = 0; th < kThreads; ++th)
    pairs.emplace_back([&, th] {
      for (int i = 0; i < kPerThread; ++i) {
        const CompletionTicket t = arena->acquire();
        std::thread completer([&arena, t, th, i] {
          arena->complete(t, make_result(th * kPerThread + i + 1));
        });
        sum.fetch_add(arena->take(t).model_version,
                      std::memory_order_relaxed);
        completer.join();
      }
    });
  for (auto& t : pairs) t.join();

  std::uint64_t want = 0;
  for (std::uint64_t v = 1; v <= kThreads * kPerThread; ++v) want += v;
  EXPECT_EQ(sum.load(), want);
  EXPECT_EQ(arena->outstanding(), 0u);
}

TEST(CompletionArena, ConcurrentAbandonVsCompleteNeverLeaks) {
  auto arena = std::make_shared<CompletionArena>(16);
  constexpr int kRounds = 4000;
  for (int i = 0; i < kRounds; ++i) {
    const CompletionTicket t = arena->acquire();
    std::thread completer(
        [&arena, t, i] { arena->complete(t, make_result(i)); });
    arena->abandon(t);  // races the completion; exactly one side recycles
    completer.join();
    ASSERT_EQ(arena->outstanding(), 0u) << "round " << i;
  }
}

}  // namespace
}  // namespace mev::serve
