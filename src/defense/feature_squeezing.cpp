#include "defense/feature_squeezing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "data/dataset.hpp"
#include "math/linalg.hpp"
#include "math/stats.hpp"
#include "nn/session.hpp"

namespace mev::defense {

BitDepthSqueezer::BitDepthSqueezer(int bits) : bits_(bits) {
  if (bits < 1 || bits > 16)
    throw std::invalid_argument("BitDepthSqueezer: bits must be in [1,16]");
}

math::Matrix BitDepthSqueezer::squeeze(const math::Matrix& features) const {
  const float levels = static_cast<float>((1 << bits_) - 1);
  math::Matrix out = features;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const float clamped = std::clamp(out.data()[i], 0.0f, 1.0f);
    out.data()[i] = std::round(clamped * levels) / levels;
  }
  return out;
}

std::string BitDepthSqueezer::name() const {
  return "bit-depth-" + std::to_string(bits_);
}

std::unique_ptr<Squeezer> BitDepthSqueezer::clone() const {
  return std::make_unique<BitDepthSqueezer>(*this);
}

math::Matrix BinarySqueezer::squeeze(const math::Matrix& features) const {
  math::Matrix out = features;
  for (std::size_t i = 0; i < out.size(); ++i)
    out.data()[i] = out.data()[i] > threshold_ ? 1.0f : 0.0f;
  return out;
}

std::unique_ptr<Squeezer> BinarySqueezer::clone() const {
  return std::make_unique<BinarySqueezer>(*this);
}

FeatureSqueezing::FeatureSqueezing(std::shared_ptr<nn::Network> model,
                                   std::unique_ptr<Squeezer> squeezer,
                                   double threshold)
    : model_(std::move(model)),
      squeezer_(std::move(squeezer)),
      threshold_(threshold) {
  if (model_ == nullptr)
    throw std::invalid_argument("FeatureSqueezing: null model");
  if (squeezer_ == nullptr)
    throw std::invalid_argument("FeatureSqueezing: null squeezer");
  if (threshold_ < 0.0)
    throw std::invalid_argument("FeatureSqueezing: negative threshold");
  session_ = std::make_unique<nn::InferenceSession>(*model_);
}

std::vector<double> FeatureSqueezing::scores(const math::Matrix& features) {
  // Copy the first probability matrix: the second predict_proba call
  // reuses the session buffer.
  const math::Matrix p_original = session_->predict_proba(features);
  const math::Matrix& p_squeezed =
      session_->predict_proba(squeezer_->squeeze(features));
  std::vector<double> out(features.rows());
  for (std::size_t i = 0; i < features.rows(); ++i)
    out[i] = math::l1_distance(p_original.row(i), p_squeezed.row(i));
  return out;
}

std::vector<bool> FeatureSqueezing::is_adversarial(
    const math::Matrix& features) {
  const auto s = scores(features);
  std::vector<bool> flagged(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) flagged[i] = s[i] > threshold_;
  return flagged;
}

std::vector<int> FeatureSqueezing::classify(const math::Matrix& features) {
  const auto flagged = is_adversarial(features);
  const auto session_preds = session_->predict(features);
  std::vector<int> preds(session_preds.begin(), session_preds.end());
  for (std::size_t i = 0; i < preds.size(); ++i)
    if (flagged[i]) preds[i] = data::kMalwareLabel;
  return preds;
}

double FeatureSqueezing::calibrate_threshold(
    const nn::Network& model, const Squeezer& squeezer,
    const math::Matrix& legitimate_features, double percentile) {
  if (legitimate_features.rows() == 0)
    throw std::invalid_argument("calibrate_threshold: empty calibration set");
  nn::InferenceSession session(model, legitimate_features.rows());
  const math::Matrix p_original = session.predict_proba(legitimate_features);
  const math::Matrix& p_squeezed =
      session.predict_proba(squeezer.squeeze(legitimate_features));
  std::vector<double> s(legitimate_features.rows());
  for (std::size_t i = 0; i < s.size(); ++i)
    s[i] = math::l1_distance(p_original.row(i), p_squeezed.row(i));
  return math::percentile(s, percentile);
}

}  // namespace mev::defense
