file(REMOVE_RECURSE
  "libmev_attack.a"
)
