#include "core/blackbox.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "runtime/fault_injection.hpp"

namespace mev::core {
namespace {

/// A trivial oracle: malware iff feature 0's count exceeds a threshold.
class ThresholdOracle final : public CountOracle {
 public:
  std::vector<int> label_counts(const math::Matrix& counts) override {
    record_queries(counts.rows());
    std::vector<int> labels(counts.rows());
    for (std::size_t i = 0; i < counts.rows(); ++i)
      labels[i] = counts(i, 0) > 5.0f ? 1 : 0;
    return labels;
  }
};

math::Matrix seed_counts(std::size_t n, std::size_t d, std::uint64_t seed) {
  math::Rng rng(seed);
  math::Matrix counts(n, d);
  for (std::size_t i = 0; i < counts.size(); ++i)
    counts.data()[i] = static_cast<float>(rng.poisson(5.0));
  return counts;
}

BlackBoxConfig config(std::size_t input_dim) {
  BlackBoxConfig cfg;
  cfg.substitute_architecture.dims = {input_dim, 16, 2};
  cfg.substitute_architecture.seed = 4;
  cfg.training_per_round.epochs = 10;
  cfg.augmentation_rounds = 2;
  return cfg;
}

TEST(BlackBox, OracleCountsQueries) {
  ThresholdOracle oracle;
  oracle.label_counts(math::Matrix(7, 3));
  oracle.label_counts(math::Matrix(5, 3));
  EXPECT_EQ(oracle.queries(), 12u);
}

TEST(BlackBox, EmptySeedThrows) {
  ThresholdOracle oracle;
  EXPECT_THROW(run_blackbox_framework(oracle, math::Matrix(0, 4), config(4)),
               std::invalid_argument);
}

TEST(BlackBox, ArchitectureMismatchThrows) {
  ThresholdOracle oracle;
  EXPECT_THROW(
      run_blackbox_framework(oracle, seed_counts(10, 4, 1), config(5)),
      std::invalid_argument);
}

TEST(BlackBox, DatasetDoublesEachRound) {
  ThresholdOracle oracle;
  const auto result =
      run_blackbox_framework(oracle, seed_counts(16, 4, 2), config(4));
  ASSERT_EQ(result.rounds.size(), 3u);  // rounds 0..2
  EXPECT_EQ(result.rounds[0].dataset_rows, 16u);
  EXPECT_EQ(result.rounds[1].dataset_rows, 32u);
  EXPECT_EQ(result.rounds[2].dataset_rows, 64u);
  EXPECT_EQ(result.total_queries, 16u + 32u + 64u);
}

TEST(BlackBox, MaxRowsCapStopsAugmentation) {
  ThresholdOracle oracle;
  auto cfg = config(4);
  cfg.augmentation_rounds = 10;
  cfg.max_dataset_rows = 40;
  const auto result =
      run_blackbox_framework(oracle, seed_counts(16, 4, 3), cfg);
  EXPECT_LE(result.rounds.back().dataset_rows, 40u);
}

TEST(BlackBox, SubstituteLearnsSimpleOracle) {
  ThresholdOracle oracle;
  auto cfg = config(4);
  cfg.training_per_round.epochs = 25;
  const auto result =
      run_blackbox_framework(oracle, seed_counts(64, 4, 5), cfg);
  EXPECT_GT(result.rounds.back().oracle_agreement, 0.85);
  ASSERT_NE(result.substitute, nullptr);
  EXPECT_TRUE(result.attacker_transform.fitted());
}

TEST(BlackBox, RealizeCountsInvertsTransform) {
  features::CountTransform t;
  const math::Matrix counts = seed_counts(12, 5, 7);
  t.fit(counts);
  const math::Matrix features = t.apply(counts);
  const math::Matrix realized = realize_counts(t, features);
  EXPECT_EQ(realized, counts);
}

std::string network_bytes(const nn::Network& net) {
  std::ostringstream os;
  nn::save_network(net, os);
  return os.str();
}

void expect_same_result(const BlackBoxResult& a, const BlackBoxResult& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].dataset_rows, b.rounds[i].dataset_rows) << i;
    EXPECT_EQ(a.rounds[i].oracle_queries, b.rounds[i].oracle_queries) << i;
    EXPECT_EQ(a.rounds[i].oracle_agreement, b.rounds[i].oracle_agreement)
        << i;
  }
  EXPECT_EQ(a.total_queries, b.total_queries);
  ASSERT_NE(a.substitute, nullptr);
  ASSERT_NE(b.substitute, nullptr);
  EXPECT_EQ(network_bytes(*a.substitute), network_bytes(*b.substitute));
}

TEST(BlackBox, MaxRowsBelowSeedThrows) {
  ThresholdOracle oracle;
  auto cfg = config(4);
  cfg.max_dataset_rows = 8;
  EXPECT_THROW(run_blackbox_framework(oracle, seed_counts(16, 4, 2), cfg),
               std::invalid_argument);
}

TEST(BlackBox, OracleResponseSizeMismatchThrows) {
  class ShortOracle final : public CountOracle {
   public:
    std::vector<int> label_counts(const math::Matrix& counts) override {
      return std::vector<int>(counts.rows() - 1, 0);
    }
  };
  ShortOracle oracle;
  EXPECT_THROW(
      run_blackbox_framework(oracle, seed_counts(16, 4, 2), config(4)),
      std::runtime_error);
}

TEST(BlackBox, RealizeCountsValidatesInputs) {
  features::CountTransform unfitted;
  EXPECT_THROW(realize_counts(unfitted, math::Matrix(2, 5)),
               std::invalid_argument);
  features::CountTransform t;
  t.fit(seed_counts(12, 5, 7));
  EXPECT_THROW(realize_counts(t, math::Matrix(2, 4)), std::invalid_argument);
}

// The run-level acceptance matrix: a resilient stack over a faulty oracle
// must produce a BIT-IDENTICAL BlackBoxResult (substitute weights, round
// stats, query totals) under every built-in fault profile.
TEST(BlackBox, FaultProfilesLeaveResultBitIdentical) {
  const math::Matrix seeds = seed_counts(16, 4, 2);
  const auto cfg = config(4);
  ThresholdOracle clean;
  const auto reference = run_blackbox_framework(clean, seeds, cfg);

  for (const auto& profile : runtime::FaultProfile::builtin_profiles()) {
    SCOPED_TRACE(profile.name);
    ThresholdOracle inner;
    runtime::FakeClock clock;
    runtime::FaultInjectingOracle flaky(inner, profile, &clock);
    runtime::CircuitBreakerConfig breaker;
    breaker.open_cooldown_ms = 50;
    runtime::ResilientOracle resilient(flaky, {}, breaker, &clock);
    const auto result = run_blackbox_framework(resilient, seeds, cfg);
    expect_same_result(result, reference);
    // The per-round stats surface what resilience cost: under a profile
    // that injects faults, the final round reports the recovery work.
    EXPECT_EQ(result.rounds.back().resilience.calls, result.rounds.size());
    // All waiting was simulated on the fake clock (backoff plus any
    // injected timeout latency) — the test itself never slept.
    EXPECT_GE(clock.total_slept_ms(), resilient.stats().backoff_ms);
  }
}

TEST(BlackBox, CheckpointResumeIsBitIdentical) {
  /// Simulates a crash: dies (plain std::runtime_error, not a retryable
  /// OracleError) once the query budget is spent.
  class CrashingOracle final : public CountOracle {
   public:
    explicit CrashingOracle(std::size_t budget) : budget_(budget) {}
    std::vector<int> label_counts(const math::Matrix& counts) override {
      if (queries() + counts.rows() > budget_)
        throw std::runtime_error("simulated crash");
      record_queries(counts.rows());
      std::vector<int> labels(counts.rows());
      for (std::size_t i = 0; i < counts.rows(); ++i)
        labels[i] = counts(i, 0) > 5.0f ? 1 : 0;
      return labels;
    }

   private:
    std::size_t budget_;
  };

  const math::Matrix seeds = seed_counts(16, 4, 2);
  auto cfg = config(4);
  cfg.checkpoint_path = ::testing::TempDir() + "/mev_bb_resume.ckpt";
  std::filesystem::remove(cfg.checkpoint_path);

  ThresholdOracle clean;
  auto reference_cfg = cfg;
  reference_cfg.checkpoint_path.clear();
  const auto reference = run_blackbox_framework(clean, seeds, reference_cfg);

  // Round 0 queries 16 rows and checkpoints; round 1 needs 32 more and
  // dies mid-query. The checkpoint on disk holds the end-of-round-0 state.
  CrashingOracle crashing(20);
  EXPECT_THROW(run_blackbox_framework(crashing, seeds, cfg),
               std::runtime_error);
  ASSERT_TRUE(std::filesystem::exists(cfg.checkpoint_path));

  ThresholdOracle fresh;
  const auto resumed = run_blackbox_framework(fresh, seeds, cfg);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.resumed_from_round, 1u);
  expect_same_result(resumed, reference);
  // The resumed process did not repeat round 0's queries.
  EXPECT_EQ(fresh.queries(), reference.total_queries - 16u);
  std::filesystem::remove(cfg.checkpoint_path);
}

TEST(BlackBox, FinishedCheckpointShortCircuits) {
  const math::Matrix seeds = seed_counts(16, 4, 2);
  auto cfg = config(4);
  cfg.checkpoint_path = ::testing::TempDir() + "/mev_bb_done.ckpt";
  std::filesystem::remove(cfg.checkpoint_path);

  ThresholdOracle first;
  const auto full = run_blackbox_framework(first, seeds, cfg);
  ThresholdOracle second;
  const auto replay = run_blackbox_framework(second, seeds, cfg);
  EXPECT_TRUE(replay.resumed);
  EXPECT_EQ(second.queries(), 0u);  // nothing left to do
  expect_same_result(replay, full);
  std::filesystem::remove(cfg.checkpoint_path);
}

TEST(BlackBox, ResumeRejectsMismatchedConfig) {
  const math::Matrix seeds = seed_counts(16, 4, 2);
  auto cfg = config(4);
  cfg.checkpoint_path = ::testing::TempDir() + "/mev_bb_mismatch.ckpt";
  std::filesystem::remove(cfg.checkpoint_path);
  ThresholdOracle oracle;
  (void)run_blackbox_framework(oracle, seeds, cfg);

  auto other = cfg;
  other.lambda = 0.2f;
  ThresholdOracle oracle2;
  EXPECT_THROW(run_blackbox_framework(oracle2, seeds, other),
               std::runtime_error);
  std::filesystem::remove(cfg.checkpoint_path);
}

TEST(BlackBox, QueryCacheCutsQueriesNotLabels) {
  const math::Matrix seeds = seed_counts(16, 4, 2);
  const auto cfg = config(4);
  ThresholdOracle plain;
  const auto uncached = run_blackbox_framework(plain, seeds, cfg);

  auto cached_cfg = cfg;
  cached_cfg.use_query_cache = true;
  ThresholdOracle inner;
  const auto cached = run_blackbox_framework(inner, seeds, cached_cfg);

  // Same labels reach training, so the substitute is bit-identical...
  EXPECT_EQ(network_bytes(*cached.substitute),
            network_bytes(*uncached.substitute));
  ASSERT_EQ(cached.rounds.size(), uncached.rounds.size());
  for (std::size_t i = 0; i < cached.rounds.size(); ++i) {
    EXPECT_EQ(cached.rounds[i].dataset_rows, uncached.rounds[i].dataset_rows);
    EXPECT_EQ(cached.rounds[i].oracle_agreement,
              uncached.rounds[i].oracle_agreement);
  }
  // ...but repeat submissions were deduped: later rounds re-query only new
  // rows, so the budget shrinks and the hits show up in the stats.
  EXPECT_LT(cached.total_queries, uncached.total_queries);
  EXPECT_LT(inner.queries(), plain.queries());
  EXPECT_GT(cached.rounds.back().cache_hits, 0u);
}

TEST(BlackBox, ResilienceStatsAreZeroForPlainOracles) {
  ThresholdOracle oracle;
  const auto result =
      run_blackbox_framework(oracle, seed_counts(16, 4, 2), config(4));
  for (const auto& round : result.rounds) {
    EXPECT_EQ(round.resilience.retries, 0u);
    EXPECT_EQ(round.resilience.calls, 0u);
    EXPECT_EQ(round.cache_hits, 0u);
  }
}

TEST(BlackBox, AgreementTendsUpward) {
  ThresholdOracle oracle;
  auto cfg = config(4);
  cfg.augmentation_rounds = 3;
  cfg.training_per_round.epochs = 20;
  const auto result =
      run_blackbox_framework(oracle, seed_counts(32, 4, 9), cfg);
  // The last round should agree at least as well as the first (Jacobian
  // augmentation adds informative boundary samples).
  EXPECT_GE(result.rounds.back().oracle_agreement,
            result.rounds.front().oracle_agreement - 0.05);
}

TEST(BlackBox, RoundPhaseDurationsArePopulated) {
  ThresholdOracle oracle;
  const auto result =
      run_blackbox_framework(oracle, seed_counts(16, 4, 11), config(4));
  ASSERT_EQ(result.rounds.size(), 3u);
  // Substitute training takes real wall time every round; the final
  // round never augments, so its augment duration stays zero.
  for (const auto& round : result.rounds) EXPECT_GT(round.train_us, 0u);
  EXPECT_EQ(result.rounds.back().augment_us, 0u);
}

}  // namespace
}  // namespace mev::core
