// Loss functions. Softmax cross-entropy supports a distillation
// temperature T and soft (probability) targets, which is what defensive
// distillation (§II-C.2 of the paper) trains with.
#pragma once

#include <vector>

#include "math/matrix.hpp"

namespace mev::nn {

struct LossResult {
  double loss = 0.0;          // mean loss over the batch
  math::Matrix grad_logits;   // dLoss/dLogits (already divided by batch size)
};

/// Softmax cross-entropy with integer class labels.
/// `logits` is batch x classes; `labels[i]` in [0, classes).
/// Temperature divides the logits before the softmax (T >= 1 softens).
LossResult softmax_cross_entropy(const math::Matrix& logits,
                                 const std::vector<int>& labels,
                                 float temperature = 1.0f);

/// Softmax cross-entropy with soft probability targets (batch x classes,
/// each row summing to ~1). Used for distillation student training.
LossResult soft_label_cross_entropy(const math::Matrix& logits,
                                    const math::Matrix& targets,
                                    float temperature = 1.0f);

/// Mean squared error between predictions and targets (same shape).
LossResult mean_squared_error(const math::Matrix& predictions,
                              const math::Matrix& targets);

/// Row-wise softmax of logits at the given temperature.
math::Matrix softmax_rows(const math::Matrix& logits,
                          float temperature = 1.0f);

}  // namespace mev::nn
