// Global-default-plus-injectable wiring. Library code never forces a
// singleton: every instrumented API takes explicit `obs::Tracer*` /
// `obs::MetricsRegistry*` parameters, and a nullptr there resolves to the
// AMBIENT sinks — the innermost thread-local obs::Scope, or failing that
// the process-wide defaults.
//
//   obs::Tracer tracer;                 // my own, FakeClock if I like
//   obs::MetricsRegistry registry;
//   obs::Scope scope(&tracer, &registry);   // this thread, this block
//   attack.craft(model, x);             // JSMA spans land in `tracer`
//
// The process-wide default tracer starts DISABLED (zero recording cost
// until someone opts in with obs::default_tracer().set_enabled(true));
// the default registry is always live — counters are too cheap to gate.
//
// Scope overrides are thread-local and do NOT propagate into worker
// threads (OpenMP shards, the serving pool). Code that fans out resolves
// the ambient sinks once on the calling thread and hands the pointers to
// its workers — see attack/jsma.cpp and serve/scoring_service.cpp.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mev::obs {

/// Process-wide default sinks (created on first use, never destroyed
/// before exit). The tracer starts disabled.
Tracer& default_tracer();
MetricsRegistry& default_registry();

/// The ambient sinks for this thread: the innermost live Scope's, or the
/// process defaults. Never nullptr.
Tracer* current_tracer() noexcept;
MetricsRegistry* current_registry() noexcept;

/// RAII thread-local override of the ambient sinks. Scopes nest; a
/// nullptr argument keeps the outer scope's value for that sink.
class Scope {
 public:
  Scope(Tracer* tracer, MetricsRegistry* registry) noexcept;
  ~Scope();

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Tracer* previous_tracer_;
  MetricsRegistry* previous_registry_;
};

/// nullptr -> ambient; anything else passes through. The one-liner every
/// instrumented config-plumbed call site uses.
inline Tracer* resolve(Tracer* tracer) noexcept {
  return tracer != nullptr ? tracer : current_tracer();
}
inline MetricsRegistry* resolve(MetricsRegistry* registry) noexcept {
  return registry != nullptr ? registry : current_registry();
}

}  // namespace mev::obs
