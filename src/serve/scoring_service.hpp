// ScoringService: the in-process serving layer in front of
// core::MalwareDetector — the deployment surface the paper's black-box
// threat model assumes (the detector as a queried cloud service).
//
//   submit(counts) ──▶ admission control ──▶ bounded queue ──▶
//       micro-batcher (flush at max_batch_rows or max_queue_delay_ms)
//       ──▶ worker pool, one pre-warmed nn::InferenceSession per worker
//       ──▶ promise fulfilled with one Verdict per row
//
// Guarantees:
//  * Bounded memory/latency: a submission is either admitted (queued rows
//    never exceed max_queue_rows) or rejected immediately with an explicit
//    reason — the queue never grows without bound.
//  * Exactly-once: every admitted request is resolved exactly once —
//    scored, deadline-rejected, or shutdown-rejected; never dropped,
//    never double-scored (each request lives in exactly one place: the
//    batcher, or the worker that popped it).
//  * Parity: a batch is scored through the same
//    MalwareDetector::scan_counts code path as sequential callers, and
//    per-row results are independent of batch composition, so service
//    verdicts are bit-identical to sequential scanning.
//  * Hot swap: swap_model() atomically publishes a new (pipeline, network)
//    snapshot (RCU-style: readers pin the snapshot with a shared_ptr, the
//    writer publishes and never blocks scoring). Batches formed before
//    the swap finish on the snapshot they pinned; later batches use the
//    new one. Zero downtime, no lost or re-scored requests.
//
// All flush timing flows through an injectable runtime::Clock; with
// workers = 0 the service runs in manual-pump mode (no threads), which
// together with runtime::FakeClock makes every policy deterministic in
// tests.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/detector.hpp"
#include "features/pipeline.hpp"
#include "nn/network.hpp"
#include "nn/session.hpp"
#include "obs/admin_server.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/clock.hpp"
#include "serve/micro_batcher.hpp"
#include "serve/request.hpp"
#include "serve/stats.hpp"

namespace mev::serve {

struct ServiceConfig {
  /// Worker threads. 0 = manual-pump mode: no threads are started and the
  /// caller drives scoring with pump() — the deterministic test mode.
  std::size_t workers = 4;
  /// Micro-batch flush thresholds (see BatcherConfig).
  std::size_t max_batch_rows = 64;
  std::uint64_t max_queue_delay_ms = 2;
  /// Admission bound: a submission is rejected with kQueueFull when the
  /// rows already queued plus its own would exceed this.
  std::size_t max_queue_rows = 4096;
  /// Pre-warm each worker's session for this batch size (0 = use
  /// max_batch_rows), so the steady state is allocation-free from the
  /// first batch.
  std::size_t session_max_batch = 0;
  /// Timing source; nullptr = runtime::SystemClock::instance(). Must
  /// outlive the service.
  runtime::Clock* clock = nullptr;
  /// Observability sinks; nullptr = the ambient
  /// obs::current_tracer()/current_registry() at construction time
  /// (resolved once, on the constructing thread — worker threads inherit
  /// them). Every ServiceStats counter/histogram is mirrored into the
  /// registry under mev.serve.*, and each scored batch emits a
  /// mev.serve.batch span. Must outlive the service.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Structured log destination; nullptr = obs::default_logger(). Must
  /// outlive the service.
  obs::Logger* logger = nullptr;
  /// Embedded HTTP admin plane (/metrics /varz /healthz /readyz /tracez).
  /// Disabled by default; with enabled=true the service starts the server
  /// on construction, wires its /readyz to readiness(), and keeps it
  /// serving through shutdown() so a drain is observable as 503 — the
  /// server stops only when the service is destroyed. The config's sink
  /// pointers default to the service's own resolved sinks.
  obs::AdminServerConfig admin;
};

class ScoringService {
 public:
  /// Serves `network` behind `pipeline`; dimensions are validated like
  /// core::MalwareDetector's constructor.
  ScoringService(features::FeaturePipeline pipeline,
                 std::shared_ptr<nn::Network> network,
                 ServiceConfig config = {});
  /// Destructor drains pending work (shutdown(true)) if still running.
  ~ScoringService();

  ScoringService(const ScoringService&) = delete;
  ScoringService& operator=(const ScoringService&) = delete;

  /// Submits raw count rows (cols must equal the vocabulary size). The
  /// future resolves with verdicts in row order, or with a rejection.
  /// Admission (queue_full / shutting_down) is decided synchronously;
  /// those futures are already ready on return.
  std::future<ScoreResult> submit(math::Matrix counts,
                                  SubmitOptions options = {});

  /// Convenience synchronous call: submit + wait.
  ScoreResult score(math::Matrix counts, SubmitOptions options = {});

  /// Atomically publishes a new model snapshot for subsequent batches.
  /// The new pipeline must accept the same count dimension as the current
  /// one (queued requests stay scorable). Never blocks scoring; in-flight
  /// batches finish on the snapshot they pinned. Returns the new version.
  std::uint64_t swap_model(features::FeaturePipeline pipeline,
                           std::shared_ptr<nn::Network> network);

  /// Version of the currently-published snapshot (1 on construction).
  std::uint64_t model_version() const;

  /// Stops the service. With drain, pending requests are scored first
  /// (partial batches flush immediately); without, they are rejected with
  /// kShuttingDown. Subsequent submissions are rejected. Idempotent.
  void shutdown(bool drain = true);

  /// Manual-pump mode only (workers == 0): expires overdue requests, then
  /// forms and scores at most one batch if a flush is due (or `force`).
  /// Returns the number of rows scored.
  std::size_t pump(bool force = false);

  /// Point-in-time copy of counters and histograms.
  ServiceStats stats() const;

  /// The verdict served on /readyz: ready while running and below the
  /// queue high-water mark (90% of max_queue_rows); not ready (with a
  /// reason) while draining, stopped, or saturated.
  obs::Readiness readiness() const;

  /// The embedded admin server, or nullptr when config.admin.enabled was
  /// false (or the OBS-off build stubbed it out and start() failed).
  obs::AdminServer* admin_server() noexcept { return admin_.get(); }

  const ServiceConfig& config() const noexcept { return config_; }

 private:
  /// Immutable published model: pipeline + network wrapped back into a
  /// detector so workers reuse the exact sequential scan path.
  struct ModelSnapshot {
    ModelSnapshot(features::FeaturePipeline p, std::shared_ptr<nn::Network> n,
                  std::uint64_t v)
        : detector(std::move(p), std::move(n)),
          version(v),
          count_cols(detector.pipeline().extractor().vocab().size()) {}

    core::MalwareDetector detector;
    std::uint64_t version;
    std::size_t count_cols;  // expected submission width (vocab size)
  };

  enum class State { kRunning, kDraining, kStopped };

  /// Per-worker scratch: the pinned snapshot, its session, and the batch
  /// assembly buffer (all reused across batches; reallocated only on
  /// snapshot change).
  struct WorkerState {
    std::shared_ptr<const ModelSnapshot> pinned;
    std::unique_ptr<nn::InferenceSession> session;
    math::Matrix batch_counts;
  };

  std::shared_ptr<const ModelSnapshot> current_snapshot() const;
  void worker_loop(WorkerState& worker);
  /// Scores one batch outside the queue lock and fulfils its promises.
  void score_batch(WorkerState& worker, Batch batch);
  /// Rejects requests (outside the lock) and bumps the matching counter.
  void reject_all(std::vector<Request> requests, RejectReason reason);
  void join_workers();

  /// Registry mirrors of the ServiceStats fields (handles, so hot-path
  /// updates are a relaxed atomic op; inert when no registry is wired).
  struct ObsHandles {
    obs::Counter accepted_requests, accepted_rows;
    obs::Counter rejected_queue_full, rejected_shutting_down,
        rejected_deadline;
    obs::Counter completed_requests, completed_rows;
    obs::Counter batches, model_swaps;
    obs::Histogram batch_rows, queue_delay_us, e2e_latency_us;
  };

  ServiceConfig config_;
  runtime::Clock* clock_;
  obs::Tracer* tracer_;
  obs::Logger* logger_;
  ObsHandles obs_;

  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const ModelSnapshot> snapshot_;
  std::uint64_t next_version_ = 1;

  mutable std::mutex mutex_;  // guards batcher_ + state_
  std::condition_variable cv_;
  MicroBatcher batcher_;
  State state_ = State::kRunning;

  mutable std::mutex stats_mutex_;
  ServiceStats stats_;

  std::vector<WorkerState> worker_states_;
  std::vector<std::thread> threads_;

  /// Declared last: destroyed first, so its readiness probe (which reads
  /// this service's state) never outlives the members it touches.
  std::unique_ptr<obs::AdminServer> admin_;
};

}  // namespace mev::serve
