// Source-level (live) grey-box attack — the paper's third grey-box
// experiment (§III-B): a researcher adds one API call to the malware
// source multiple times and re-runs the detector. Here the "source edit"
// is an append to the API log, which is exactly what the edit does to the
// feature pipeline's input.
//
// The attack has two steps, matching the paper:
//  1. use the ATTACKER'S substitute model to choose which API to add
//     (one JSMA saliency step), and
//  2. insert that API k times and measure the TARGET detector's malware
//     confidence through the full log -> features -> DNN pipeline.
#pragma once

#include <string>
#include <vector>

#include "data/api_log.hpp"
#include "features/pipeline.hpp"
#include "nn/network.hpp"

namespace mev::attack {

struct LiveTestPoint {
  std::size_t insertions = 0;        // API added this many times
  double malware_confidence = 0.0;   // target model P(malware)
  int predicted_class = 1;
};

struct LiveTestResult {
  std::string api_name;              // the inserted API
  std::size_t feature_index = 0;
  std::vector<LiveTestPoint> points; // one per insertion count 0..k
};

/// Chooses the API feature whose increase most raises the craft model's
/// clean probability for this sample (the feature an add-only JSMA would
/// pick first). If `per_call_delta` is non-empty (same length as
/// `features`), the saliency is gradient * per_call_delta — the change in
/// clean probability achievable by ONE actual API call, which is what a
/// source-level attacker can buy. Returns the feature index.
std::size_t select_api_to_add(const nn::Network& craft_model,
                              std::span<const float> features,
                              std::span<const float> per_call_delta = {});

/// Feature-space movement produced by adding each API exactly once to
/// `raw_counts`, through an elementwise transform (both CountTransform and
/// BinaryTransform are elementwise).
std::vector<float> per_call_feature_delta(
    const features::FeaturePipeline& pipeline,
    std::span<const float> raw_counts);

/// Runs the live test: for k = 0..max_insertions, appends the API k times
/// to a copy of the log, re-extracts features through `pipeline`, and
/// records the target model's malware confidence.
LiveTestResult run_live_test(const nn::Network& target_model,
                             const features::FeaturePipeline& pipeline,
                             const data::ApiLog& malware_log,
                             std::size_t api_feature_index,
                             std::size_t max_insertions = 8);

/// Convenience overload that first selects the API with `craft_model`.
LiveTestResult run_live_test(const nn::Network& target_model,
                             const nn::Network& craft_model,
                             const features::FeaturePipeline& pipeline,
                             const data::ApiLog& malware_log,
                             std::size_t max_insertions = 8);

}  // namespace mev::attack
