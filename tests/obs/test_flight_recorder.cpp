// FlightRecorder retention policy: N-slowest-per-window competition,
// error-ring capture, two-bank window rotation (the previous window stays
// readable), counter semantics (dropped = contention only), and a
// concurrent writers + snapshot stress that CI runs under TSan. Compiled
// in every build mode — the recorder has no MEV_ENABLE_OBS surface.
#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace {

using mev::obs::FlightRecord;
using mev::obs::FlightRecorder;
using mev::obs::FlightRecorderConfig;

FlightRecord make_record(std::uint64_t trace_id, std::uint64_t start_us,
                         std::uint64_t duration_us, bool error = false) {
  FlightRecord record;
  record.trace_id = trace_id;
  record.root_span_id = trace_id * 2 + 1;
  record.start_us = start_us;
  record.duration_us = duration_us;
  record.http_status = error ? 503 : 200;
  record.error = error;
  return record;
}

std::vector<std::uint64_t> sorted_durations(const FlightRecorder& recorder) {
  std::vector<std::uint64_t> durations;
  for (const FlightRecord& r : recorder.snapshot())
    durations.push_back(r.duration_us);
  std::sort(durations.begin(), durations.end());
  return durations;
}

TEST(FlightRecorder, KeepsTheSlowestRequestsOfAWindow) {
  FlightRecorder recorder(FlightRecorderConfig{.slow_slots = 4,
                                               .error_slots = 4,
                                               .window_us = 1'000'000});
  // 10 requests, durations 10..100; only the 4 slowest survive.
  for (std::uint64_t i = 1; i <= 10; ++i)
    recorder.record(make_record(i, /*start_us=*/i, /*duration_us=*/i * 10));
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.dropped(), 0u);  // not-slow-enough is not a drop
  EXPECT_EQ(sorted_durations(recorder),
            (std::vector<std::uint64_t>{70, 80, 90, 100}));
}

TEST(FlightRecorder, SlowArrivalOrderDoesNotMatter) {
  FlightRecorder recorder(FlightRecorderConfig{.slow_slots = 2,
                                               .error_slots = 2,
                                               .window_us = 1'000'000});
  // Slowest first: later faster requests must NOT evict it.
  recorder.record(make_record(1, 1, 500));
  recorder.record(make_record(2, 2, 10));
  recorder.record(make_record(3, 3, 20));
  recorder.record(make_record(4, 4, 400));
  EXPECT_EQ(sorted_durations(recorder),
            (std::vector<std::uint64_t>{400, 500}));
}

TEST(FlightRecorder, ErrorsAlwaysRetainRegardlessOfDuration) {
  FlightRecorder recorder(FlightRecorderConfig{.slow_slots = 2,
                                               .error_slots = 8,
                                               .window_us = 1'000'000});
  recorder.record(make_record(1, 1, 900));
  recorder.record(make_record(2, 2, 800));
  // A FAST error still lands in the ring even though the slow bank is
  // full of much slower successes.
  recorder.record(make_record(3, 3, 1, /*error=*/true));
  const auto snapshot = recorder.snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  int errors = 0;
  for (const FlightRecord& r : snapshot) errors += r.error;
  EXPECT_EQ(errors, 1);
}

TEST(FlightRecorder, ErrorRingOverwritesOldestBeyondCapacity) {
  FlightRecorder recorder(FlightRecorderConfig{.slow_slots = 2,
                                               .error_slots = 3,
                                               .window_us = 1'000'000});
  for (std::uint64_t i = 1; i <= 7; ++i)
    recorder.record(make_record(i, i, i, /*error=*/true));
  std::vector<std::uint64_t> ids;
  for (const FlightRecord& r : recorder.snapshot()) ids.push_back(r.trace_id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{5, 6, 7}));
}

TEST(FlightRecorder, WindowRotationKeepsThePreviousBankReadable) {
  FlightRecorder recorder(FlightRecorderConfig{.slow_slots = 2,
                                               .error_slots = 2,
                                               .window_us = 100});
  // Window 0: two slow requests.
  recorder.record(make_record(1, 10, 1000));
  recorder.record(make_record(2, 20, 2000));
  // Window 1 (start >= 100): the bank rotates; window 0's records remain.
  recorder.record(make_record(3, 150, 30));
  EXPECT_EQ(sorted_durations(recorder),
            (std::vector<std::uint64_t>{30, 1000, 2000}));
  // Window 2 reclaims the bank window 0 used; its records age out.
  recorder.record(make_record(4, 250, 40));
  EXPECT_EQ(sorted_durations(recorder),
            (std::vector<std::uint64_t>{30, 40}));
}

TEST(FlightRecorder, SnapshotCopiesSpanPayloads) {
  FlightRecorder recorder;
  FlightRecord record = make_record(7, 100, 500);
  record.rows = 16;
  record.stage_us = {1, 2, 3, 4, 5, 485};
  record.spans[0] = {"mev.net.request", 15, 0, 100, 500};
  record.spans[1] = {"parse", 15 ^ 1, 15, 100, 1};
  record.num_spans = 2;
  recorder.record(record);
  const auto snapshot = recorder.snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].rows, 16u);
  EXPECT_EQ(snapshot[0].num_spans, 2u);
  EXPECT_STREQ(snapshot[0].spans[1].name, "parse");
  EXPECT_EQ(snapshot[0].spans[1].parent_span_id, 15u);
  EXPECT_EQ(snapshot[0].stage_us[5], 485u);
}

// TSan target: concurrent writers racing on the same slots plus a reader
// snapshotting mid-flight. The assertions are liveness + accounting; the
// real check is the absence of data-race reports.
TEST(FlightRecorder, ConcurrentWritersAndSnapshotsAreRaceFree) {
  FlightRecorder recorder(FlightRecorderConfig{.slow_slots = 4,
                                               .error_slots = 8,
                                               .window_us = 1000});
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 2000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto snapshot = recorder.snapshot();
      for (const FlightRecord& r : snapshot)
        ASSERT_LE(r.num_spans, r.spans.size());
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const auto id = static_cast<std::uint64_t>(w * kPerWriter + i + 1);
        recorder.record(make_record(id, /*start_us=*/id,
                                    /*duration_us=*/1 + id % 97,
                                    /*error=*/i % 5 == 0));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  // Counters: retained + contention-dropped never exceeds what was
  // offered ("not slow enough" is intentionally uncounted), and the
  // recorder made progress despite the contention.
  EXPECT_LE(recorder.recorded() + recorder.dropped(),
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
  EXPECT_GT(recorder.recorded(), 0u);
  EXPECT_FALSE(recorder.snapshot().empty());
}

}  // namespace
