// The label-only oracle interface of the black-box threat model (paper
// Fig. 2): the attacker can submit raw API-count rows and gets back hard
// 0/1 labels, nothing else.
//
// The interface lives in the runtime layer (below core) so that the
// resilience decorators — FaultInjectingOracle, ResilientOracle,
// CachingOracle — can wrap any oracle without depending on the detector
// stack. core/blackbox.hpp re-exports it as mev::core::CountOracle.
//
// Threading: like nn::InferenceSession, an oracle instance is a
// per-thread object (the query counter is not atomic); share the
// underlying detector, not the oracle.
#pragma once

#include <cstddef>
#include <vector>

#include "math/matrix.hpp"

namespace mev::runtime {

/// A label-only view of the target system.
class CountOracle {
 public:
  virtual ~CountOracle() = default;

  /// Labels raw count rows (0 clean / 1 malware). Each call counts
  /// row-count queries. Implementations signal failure by throwing —
  /// OracleError subclasses (runtime/oracle_error.hpp) classify the
  /// failure as transient or permanent for the retry layer.
  virtual std::vector<int> label_counts(const math::Matrix& counts) = 0;

  std::size_t queries() const noexcept { return queries_; }

 protected:
  void record_queries(std::size_t n) noexcept { queries_ += n; }

 private:
  std::size_t queries_ = 0;
};

}  // namespace mev::runtime
