// Retry policy: exponential backoff with deterministic jitter plus
// per-call and per-run deadline budgets. Pure policy + a delay function;
// the loop that applies it lives in ResilientOracle.
#pragma once

#include <cstddef>
#include <cstdint>

#include "math/rng.hpp"

namespace mev::runtime {

struct RetryPolicy {
  /// Attempts per batch before giving up (and, for multi-row batches,
  /// bisecting). Must be >= 1.
  std::size_t max_attempts = 5;

  std::uint64_t initial_backoff_ms = 10;
  double backoff_multiplier = 2.0;
  std::uint64_t max_backoff_ms = 1000;

  /// Multiplicative jitter: the delay is scaled by a uniform factor in
  /// [1 - jitter, 1 + jitter). Drawn from a seeded stream so a retried
  /// run is exactly reproducible.
  double jitter = 0.1;
  std::uint64_t jitter_seed = 0x5eedULL;

  /// Wall-clock budget for one label_counts call, including backoff and
  /// breaker-cooldown waits (0 = unlimited).
  std::uint64_t call_deadline_ms = 0;

  /// Wall-clock budget for the oracle's whole lifetime, measured from its
  /// first call (0 = unlimited).
  std::uint64_t run_deadline_ms = 0;

  /// Single attempt, no backoff — decorator becomes (almost) a pass-through.
  static RetryPolicy none();
};

/// Delay before retry number `retry_index` (0 = delay after the first
/// failure): min(max, initial * multiplier^retry_index), jittered. The rng
/// is consumed only when jitter > 0.
std::uint64_t backoff_delay_ms(const RetryPolicy& policy,
                               std::size_t retry_index, math::Rng& jitter_rng);

}  // namespace mev::runtime
