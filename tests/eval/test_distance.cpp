#include "eval/distance_analysis.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "math/rng.hpp"

namespace mev::eval {
namespace {

TEST(Distance, PairedMalwareAdvexDistance) {
  const math::Matrix malware{{0, 0}, {1, 1}};
  const math::Matrix advex{{0, 1}, {1, 2}};  // each row moved by 1
  const math::Matrix clean{{10, 10}};
  const DistanceTriple t = l2_distance_analysis(malware, advex, clean);
  EXPECT_NEAR(t.malware_to_adversarial, 1.0, 1e-6);
}

TEST(Distance, CrossPopulationMeans) {
  const math::Matrix malware{{0, 0}};
  const math::Matrix advex{{0, 0}};
  const math::Matrix clean{{3, 4}};
  const DistanceTriple t = l2_distance_analysis(malware, advex, clean);
  EXPECT_NEAR(t.malware_to_clean, 5.0, 1e-6);
  EXPECT_NEAR(t.clean_to_adversarial, 5.0, 1e-6);
}

TEST(Distance, PaperOrderingPredicate) {
  DistanceTriple good;
  good.malware_to_adversarial = 0.3;
  good.malware_to_clean = 2.0;
  good.clean_to_adversarial = 2.2;
  EXPECT_TRUE(good.paper_ordering_holds());

  DistanceTriple bad = good;
  bad.clean_to_adversarial = 1.0;
  EXPECT_FALSE(bad.paper_ordering_holds());
}

TEST(Distance, RowMismatchThrows) {
  EXPECT_THROW(l2_distance_analysis(math::Matrix(2, 2), math::Matrix(3, 2),
                                    math::Matrix(1, 2)),
               std::invalid_argument);
}

TEST(Distance, EmptyCleanThrows) {
  EXPECT_THROW(l2_distance_analysis(math::Matrix(1, 2), math::Matrix(1, 2),
                                    math::Matrix(0, 2)),
               std::invalid_argument);
}

TEST(Distance, SubsamplingIsDeterministic) {
  math::Rng rng(3);
  math::Matrix a(50, 4), b(50, 4), c(60, 4);
  for (auto* m : {&a, &b, &c})
    for (std::size_t i = 0; i < m->size(); ++i)
      m->data()[i] = static_cast<float>(rng.uniform());
  const auto t1 = l2_distance_analysis(a, b, c, 100);
  const auto t2 = l2_distance_analysis(a, b, c, 100);
  EXPECT_EQ(t1.malware_to_clean, t2.malware_to_clean);
}

TEST(Distance, RenderCurveContainsOrderingColumn) {
  DistanceCurvePoint p;
  p.attack_strength = 0.1;
  p.distances.malware_to_adversarial = 0.2;
  p.distances.malware_to_clean = 1.0;
  p.distances.clean_to_adversarial = 1.3;
  const std::string out = render_distance_curve("gamma", {p});
  EXPECT_NE(out.find("yes"), std::string::npos);
  EXPECT_NE(out.find("gamma"), std::string::npos);
}

}  // namespace
}  // namespace mev::eval
