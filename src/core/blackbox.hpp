// Black-box attack framework (paper Fig. 2, proposed as future work; built
// here following Papernot et al. 2017's practical black-box attack):
//
//   1. the attacker holds a small SEED set of its own samples (counts);
//   2. the TARGET detector is reachable only as a label oracle;
//   3. the attacker trains a substitute on oracle labels, then grows its
//      dataset by Jacobian-based augmentation: for each sample x, add
//      x' = clamp(x + lambda * sign(dF_y(x)/dx)) — points pushed toward
//      the substitute's decision boundary, where oracle labels are most
//      informative;
//   4. after the final round, JSMA on the substitute yields adversarial
//      examples that transfer to the target.
//
// Every feature-space point is REALIZED back into an integer API-count
// vector before querying the oracle (the attacker can only submit actual
// samples), via the attacker transform's inverse.
#pragma once

#include <memory>
#include <vector>

#include "core/detector.hpp"
#include "data/dataset.hpp"
#include "features/pipeline.hpp"
#include "features/transform.hpp"
#include "nn/network.hpp"
#include "nn/trainer.hpp"

namespace mev::core {

/// A label-only view of the target system.
class CountOracle {
 public:
  virtual ~CountOracle() = default;

  /// Labels raw count rows (0 clean / 1 malware). Each call counts
  /// row-count queries.
  virtual std::vector<int> label_counts(const math::Matrix& counts) = 0;

  std::size_t queries() const noexcept { return queries_; }

 protected:
  void record_queries(std::size_t n) noexcept { queries_ += n; }

 private:
  std::size_t queries_ = 0;
};

/// Wraps a MalwareDetector as the oracle. Each oracle owns its inference
/// session, so several oracles can query one shared detector concurrently.
class DetectorOracle final : public CountOracle {
 public:
  explicit DetectorOracle(const MalwareDetector& detector)
      : detector_(&detector), session_(detector.make_session()) {}
  std::vector<int> label_counts(const math::Matrix& counts) override;

 private:
  const MalwareDetector* detector_;
  nn::InferenceSession session_;
};

struct BlackBoxConfig {
  std::size_t augmentation_rounds = 4;
  float lambda = 0.1f;                 // augmentation step size
  nn::MlpConfig substitute_architecture;  // input dim must match vocab size
  nn::TrainConfig training_per_round;
  /// Stop augmenting when the dataset reaches this many rows.
  std::size_t max_dataset_rows = 8192;
};

struct BlackBoxRoundStats {
  std::size_t dataset_rows = 0;
  std::size_t oracle_queries = 0;   // cumulative
  double oracle_agreement = 0.0;    // substitute vs oracle on this round's set
};

struct BlackBoxResult {
  std::shared_ptr<nn::Network> substitute;
  features::CountTransform attacker_transform;  // fit on the seed counts
  std::vector<BlackBoxRoundStats> rounds;
  std::size_t total_queries = 0;
};

/// Inverts the attacker's count transform feature-wise, producing the
/// smallest integer count vector whose features dominate `features`.
math::Matrix realize_counts(const features::CountTransform& transform,
                            const math::Matrix& features);

/// Runs the Fig. 2 loop. `seed_counts` are the attacker's own samples
/// (labels unknown to the attacker; the oracle provides them).
BlackBoxResult run_blackbox_framework(CountOracle& oracle,
                                      const math::Matrix& seed_counts,
                                      const BlackBoxConfig& config);

}  // namespace mev::core
