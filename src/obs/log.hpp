// Structured, leveled logging for long-running processes: the third leg of
// the obs/ telemetry plane next to tracing and metrics.
//
//   obs::Logger& log = obs::default_logger();
//   log.log(obs::LogLevel::kInfo, "serve.service", "model swapped",
//           {obs::LogField::u64_value("version", v)});
//
//   → {"ts_us":1234,"level":"info","component":"serve.service",
//      "msg":"model swapped","version":5}
//
// Design:
//  * Leveled (trace..error) with a cheap enabled() gate; records below
//    min_level cost one relaxed atomic load.
//  * Thread-safe: the record is formatted into a local buffer, then a
//    single mutex-guarded write hands it to the sink — lines never
//    interleave.
//  * Two formats: JSON lines (machine-tailed, the default) and a human
//    `2.417s WARN serve.service model swapped version=5` form.
//  * Timestamps come from an injectable runtime::Clock (FakeClock →
//    deterministic test output).
//  * Per-site token-bucket rate limiting: the MEV_LOG_* macros declare a
//    static LogSite per call site; a flooding site drops locally and the
//    drops are counted in the logger's `mev.obs.log_dropped_total`
//    registry counter, so suppression is itself observable on /metrics.
//  * Layers below obs/ (runtime/) emit through runtime::log_hook.hpp; this
//    file installs a bridge into default_logger() at static-init time.
//
// With MEV_ENABLE_OBS=OFF the logger collapses to same-shape no-op stubs
// (and the runtime hook is never installed), so call sites compile
// unchanged and emit nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "runtime/clock.hpp"
#include "runtime/log_hook.hpp"

#ifndef MEV_OBS_ENABLED
#define MEV_OBS_ENABLED 1
#endif

namespace mev::obs {

// One vocabulary across layers: the level/field types live in runtime/
// (the lowest layer that logs) and are re-exported here.
using runtime::LogField;
using runtime::LogLevel;

struct LoggerConfig {
  /// Records below this level are discarded at the call site.
  LogLevel min_level = LogLevel::kInfo;
  /// true = JSON lines; false = human-readable.
  bool json = true;
  /// Destination; nullptr = std::cerr (stdout stays clean for program
  /// output — demo parity depends on it). Must outlive the logger.
  std::ostream* sink = nullptr;
  /// Timestamp source; nullptr = runtime::SystemClock. Must outlive the
  /// logger.
  runtime::Clock* clock = nullptr;
  /// Registry for the logger's own counters (`mev.obs.log_lines_total`,
  /// `mev.obs.log_dropped_total`); nullptr = the ambient
  /// obs::current_registry() at construction. Must outlive the logger.
  MetricsRegistry* metrics = nullptr;
};

/// Per-call-site token bucket state for the MEV_LOG_* macros. Declared
/// `static` at the call site; zero-initialized = "first call initializes
/// the bucket". A site with rate_per_s == 0 is unlimited.
struct LogSite {
  double rate_per_s = 0.0;
  double burst = 1.0;
  // Bucket state, guarded by the owning logger's mutex.
  double tokens = 0.0;
  std::uint64_t last_refill_us = 0;
  bool initialized = false;
};

#if MEV_OBS_ENABLED

class Logger {
 public:
  explicit Logger(LoggerConfig config = {});

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >=
           min_level_.load(std::memory_order_relaxed);
  }
  void set_min_level(LogLevel level) noexcept {
    min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel min_level() const noexcept {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }

  void log(LogLevel level, const char* component, std::string_view message,
           std::initializer_list<LogField> fields = {}) {
    log(level, component, message, fields.begin(), fields.size());
  }
  void log(LogLevel level, const char* component, std::string_view message,
           const LogField* fields, std::size_t num_fields);

  /// Rate-limited variant used by the MEV_LOG_EVERY macro: `site` is a
  /// per-call-site token bucket; a drained bucket drops the record and
  /// bumps dropped()/mev.obs.log_dropped_total instead of writing.
  void log_site(LogSite& site, LogLevel level, const char* component,
                std::string_view message,
                std::initializer_list<LogField> fields = {});

  /// Records suppressed by rate limiting since construction.
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Records written since construction.
  std::uint64_t lines() const noexcept {
    return lines_.load(std::memory_order_relaxed);
  }

  runtime::Clock& clock() const noexcept { return *clock_; }

 private:
  void write_record(LogLevel level, const char* component,
                    std::string_view message, const LogField* fields,
                    std::size_t num_fields, std::uint64_t ts_us);

  std::atomic<int> min_level_;
  bool json_;
  std::ostream* sink_;
  runtime::Clock* clock_;
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> lines_{0};
  Counter lines_counter_;
  Counter dropped_counter_;
  std::mutex mutex_;  // guards sink writes and LogSite bucket state
};

#else  // MEV_OBS_ENABLED == 0: inline no-op stubs, same shape.

class Logger {
 public:
  explicit Logger(LoggerConfig config = {})
      : clock_(config.clock != nullptr ? config.clock
                                       : &runtime::SystemClock::instance()) {}
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  bool enabled(LogLevel) const noexcept { return false; }
  void set_min_level(LogLevel) noexcept {}
  LogLevel min_level() const noexcept { return LogLevel::kOff; }
  void log(LogLevel, const char*, std::string_view,
           std::initializer_list<LogField> = {}) {}
  void log(LogLevel, const char*, std::string_view, const LogField*,
           std::size_t) {}
  void log_site(LogSite&, LogLevel, const char*, std::string_view,
                std::initializer_list<LogField> = {}) {}
  std::uint64_t dropped() const noexcept { return 0; }
  std::uint64_t lines() const noexcept { return 0; }
  runtime::Clock& clock() const noexcept { return *clock_; }

 private:
  runtime::Clock* clock_;
};

#endif  // MEV_OBS_ENABLED

/// Process-wide default logger: JSON lines on stderr, min level kWarn
/// (quiet by default) unless the MEV_LOG_LEVEL environment variable names
/// one of trace|debug|info|warn|error|off. Created on first use, never
/// destroyed before exit.
Logger& default_logger();

/// nullptr -> default_logger(); anything else passes through.
inline Logger* resolve(Logger* logger) noexcept {
  return logger != nullptr ? logger : &default_logger();
}

/// Call-site macros. MEV_LOG writes unconditionally (above min level);
/// MEV_LOG_EVERY declares a static per-site token bucket admitting
/// `rate_per_s` records per second with bursts of `burst` — the shape for
/// per-request warning paths that must not flood under overload.
#define MEV_LOG(logger, level, component, message, ...)                   \
  do {                                                                    \
    ::mev::obs::Logger& mev_log_l_ = (logger);                            \
    if (mev_log_l_.enabled(level))                                        \
      mev_log_l_.log((level), (component), (message), ##__VA_ARGS__);     \
  } while (0)

#define MEV_LOG_EVERY(logger, level, rate_per_s, burst, component, message, \
                      ...)                                                  \
  do {                                                                      \
    ::mev::obs::Logger& mev_log_l_ = (logger);                              \
    if (mev_log_l_.enabled(level)) {                                        \
      static ::mev::obs::LogSite mev_log_site_{(rate_per_s), (burst)};      \
      mev_log_l_.log_site(mev_log_site_, (level), (component), (message),   \
                          ##__VA_ARGS__);                                   \
    }                                                                       \
  } while (0)

}  // namespace mev::obs
