
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_blackbox.cpp" "tests/CMakeFiles/test_core.dir/core/test_blackbox.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_blackbox.cpp.o.d"
  "/root/repo/tests/core/test_detector.cpp" "tests/CMakeFiles/test_core.dir/core/test_detector.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_detector.cpp.o.d"
  "/root/repo/tests/core/test_greybox.cpp" "tests/CMakeFiles/test_core.dir/core/test_greybox.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_greybox.cpp.o.d"
  "/root/repo/tests/core/test_integration.cpp" "tests/CMakeFiles/test_core.dir/core/test_integration.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_integration.cpp.o.d"
  "/root/repo/tests/core/test_persistence.cpp" "tests/CMakeFiles/test_core.dir/core/test_persistence.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_persistence.cpp.o.d"
  "/root/repo/tests/core/test_security_eval.cpp" "tests/CMakeFiles/test_core.dir/core/test_security_eval.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_security_eval.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mev_core.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/mev_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/mev_features.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/mev_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mev_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mev_data.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/mev_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mev_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
