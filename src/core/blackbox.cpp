#include "core/blackbox.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mev::core {

std::vector<int> DetectorOracle::label_counts(const math::Matrix& counts) {
  record_queries(counts.rows());
  const auto verdicts = detector_->scan_counts(session_, counts);
  std::vector<int> labels(verdicts.size());
  for (std::size_t i = 0; i < verdicts.size(); ++i)
    labels[i] = verdicts[i].predicted_class;
  return labels;
}

math::Matrix realize_counts(const features::CountTransform& transform,
                            const math::Matrix& features) {
  math::Matrix counts(features.rows(), features.cols());
  for (std::size_t r = 0; r < features.rows(); ++r)
    for (std::size_t c = 0; c < features.cols(); ++c)
      counts(r, c) = static_cast<float>(
          transform.counts_for_feature_value(c, features(r, c)));
  return counts;
}

BlackBoxResult run_blackbox_framework(CountOracle& oracle,
                                      const math::Matrix& seed_counts,
                                      const BlackBoxConfig& config) {
  if (seed_counts.rows() == 0)
    throw std::invalid_argument("run_blackbox_framework: empty seed set");
  if (config.substitute_architecture.dims.empty() ||
      config.substitute_architecture.dims.front() != seed_counts.cols())
    throw std::invalid_argument(
        "run_blackbox_framework: substitute input dim mismatch");

  BlackBoxResult result;
  result.attacker_transform.fit(seed_counts);

  math::Matrix counts = seed_counts;  // the attacker's growing sample set
  result.substitute = std::make_shared<nn::Network>(
      nn::make_mlp(config.substitute_architecture));

  for (std::size_t round = 0; round <= config.augmentation_rounds; ++round) {
    // 1. Oracle labels for the current sample set.
    const std::vector<int> labels = oracle.label_counts(counts);
    const math::Matrix features = result.attacker_transform.apply(counts);

    // 2. (Re)train the substitute from scratch on the labelled set; a fresh
    //    model per round avoids inheriting a bad early fit.
    *result.substitute =
        nn::make_mlp(config.substitute_architecture);
    nn::LabeledData train_data{features, labels};
    nn::train(*result.substitute, train_data, config.training_per_round);

    BlackBoxRoundStats stats;
    stats.dataset_rows = counts.rows();
    stats.oracle_queries = oracle.queries();
    stats.oracle_agreement =
        nn::accuracy(*result.substitute, features, labels);
    result.rounds.push_back(stats);

    if (round == config.augmentation_rounds) break;
    if (counts.rows() * 2 > config.max_dataset_rows) break;

    // 3. Jacobian-based augmentation: push each point along the sign of
    //    the substitute's gradient for its ORACLE label, realize to
    //    integer counts, and append. The session is created after this
    //    round's retraining (retraining replaces the layer objects).
    nn::InferenceSession substitute_session(*result.substitute);
    math::Matrix augmented = counts;
    for (int cls : {data::kCleanLabel, data::kMalwareLabel}) {
      std::vector<std::size_t> rows_of_cls;
      for (std::size_t i = 0; i < labels.size(); ++i)
        if (labels[i] == cls) rows_of_cls.push_back(i);
      if (rows_of_cls.empty()) continue;
      const math::Matrix subset = features.gather_rows(rows_of_cls);
      // Copy out of the session buffer: the next class iteration reuses it.
      const math::Matrix grad =
          substitute_session.input_gradient(subset, cls);
      math::Matrix moved = subset;
      for (std::size_t i = 0; i < moved.rows(); ++i)
        for (std::size_t j = 0; j < moved.cols(); ++j) {
          const float g = grad(i, j);
          const float step =
              g > 0.0f ? config.lambda : (g < 0.0f ? -config.lambda : 0.0f);
          moved(i, j) = std::clamp(moved(i, j) + step, 0.0f, 1.0f);
        }
      const math::Matrix new_counts =
          realize_counts(result.attacker_transform, moved);
      for (std::size_t i = 0; i < new_counts.rows(); ++i)
        augmented.append_row(new_counts.row(i));
    }
    counts = std::move(augmented);
  }

  result.total_queries = oracle.queries();
  return result;
}

}  // namespace mev::core
