// Structured logger behavior: pinned JSON and human formats under a
// FakeClock, level gating, field escaping, per-site token-bucket rate
// limiting with observable drop counters, the runtime log-hook bridge,
// and thread-safety of concurrent writers (exercised under TSan in CI).
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "runtime/clock.hpp"
#include "runtime/log_hook.hpp"

namespace {

using mev::obs::LogField;
using mev::obs::Logger;
using mev::obs::LoggerConfig;
using mev::obs::LogLevel;
using mev::obs::MetricsRegistry;
using mev::runtime::FakeClock;

#if MEV_OBS_ENABLED

struct LogFixture {
  std::ostringstream out;
  FakeClock clock{5};  // 5 ms -> 5000 us timestamps
  MetricsRegistry registry;

  Logger make(LogLevel min_level = LogLevel::kInfo, bool json = true) {
    LoggerConfig config;
    config.min_level = min_level;
    config.json = json;
    config.sink = &out;
    config.clock = &clock;
    config.metrics = &registry;
    return Logger(config);
  }
};

TEST(Logger, JsonRecordIsPinned) {
  LogFixture f;
  Logger logger = f.make();
  logger.log(LogLevel::kInfo, "serve.service", "model swapped",
             {LogField::u64_value("version", 5),
              LogField::f64_value("agreement", 0.5),
              LogField::i64_value("delta", -2),
              LogField::string("mode", "drain")});
  EXPECT_EQ(f.out.str(),
            "{\"ts_us\":5000,\"level\":\"info\","
            "\"component\":\"serve.service\",\"msg\":\"model swapped\","
            "\"version\":5,\"agreement\":0.5,\"delta\":-2,"
            "\"mode\":\"drain\"}\n");
  EXPECT_EQ(logger.lines(), 1u);
}

TEST(Logger, HumanFormatIsPinned) {
  LogFixture f;
  Logger logger = f.make(LogLevel::kInfo, /*json=*/false);
  logger.log(LogLevel::kWarn, "runtime.breaker", "circuit opened",
             {LogField::u64_value("trips", 3)});
  EXPECT_EQ(f.out.str(), "0.005000 warn runtime.breaker circuit opened"
                         " trips=3\n");
}

TEST(Logger, RecordsBelowMinLevelAreDiscarded) {
  LogFixture f;
  Logger logger = f.make(LogLevel::kWarn);
  EXPECT_FALSE(logger.enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
  logger.log(LogLevel::kInfo, "c", "suppressed");
  logger.log(LogLevel::kDebug, "c", "suppressed");
  EXPECT_EQ(f.out.str(), "");
  EXPECT_EQ(logger.lines(), 0u);
  logger.set_min_level(LogLevel::kDebug);
  logger.log(LogLevel::kDebug, "c", "now visible");
  EXPECT_EQ(logger.lines(), 1u);
}

TEST(Logger, JsonEscapesQuotesBackslashesAndControlBytes) {
  LogFixture f;
  Logger logger = f.make();
  logger.log(LogLevel::kInfo, "c", "say \"hi\" \\ there\n",
             {LogField::string("path", "a\\b")});
  const std::string line = f.out.str();
  EXPECT_NE(line.find("\"msg\":\"say \\\"hi\\\" \\\\ there\\u000a\""),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("\"path\":\"a\\\\b\""), std::string::npos) << line;
}

TEST(Logger, TokenBucketLimitsAndCountsDrops) {
  LogFixture f;
  Logger logger = f.make();
  mev::obs::LogSite site{/*rate_per_s=*/1.0, /*burst=*/2.0};
  // Burst of 2 admitted, the rest dropped...
  for (int i = 0; i < 10; ++i)
    logger.log_site(site, LogLevel::kWarn, "c", "flood");
  EXPECT_EQ(logger.lines(), 2u);
  EXPECT_EQ(logger.dropped(), 8u);
  // ...and the drops surface in the registry, so suppression is visible
  // on /metrics.
  EXPECT_EQ(f.registry.counter("mev.obs.log_dropped_total").value(), 8u);
  EXPECT_EQ(f.registry.counter("mev.obs.log_lines_total").value(), 2u);

  // One second later the bucket has refilled one token.
  f.clock.advance(1000);
  logger.log_site(site, LogLevel::kWarn, "c", "flood");
  logger.log_site(site, LogLevel::kWarn, "c", "flood");
  EXPECT_EQ(logger.lines(), 3u);
  EXPECT_EQ(logger.dropped(), 9u);
}

TEST(Logger, UnlimitedSiteNeverDrops) {
  LogFixture f;
  Logger logger = f.make();
  mev::obs::LogSite site;  // rate_per_s == 0: unlimited
  for (int i = 0; i < 50; ++i)
    logger.log_site(site, LogLevel::kInfo, "c", "spam");
  EXPECT_EQ(logger.lines(), 50u);
  EXPECT_EQ(logger.dropped(), 0u);
}

TEST(Logger, MacrosCompileAndGate) {
  LogFixture f;
  Logger logger = f.make(LogLevel::kWarn);
  MEV_LOG(logger, LogLevel::kInfo, "c", "gated out",
          {LogField::u64_value("n", 1)});
  EXPECT_EQ(logger.lines(), 0u);
  MEV_LOG(logger, LogLevel::kError, "c", "emitted");
  EXPECT_EQ(logger.lines(), 1u);
  // One macro occurrence = one static LogSite: looping over it shares the
  // bucket, so the second pass is dropped.
  for (int i = 0; i < 2; ++i)
    MEV_LOG_EVERY(logger, LogLevel::kWarn, /*rate_per_s=*/1.0, /*burst=*/1.0,
                  "c", "limited", {LogField::u64_value("n", 2)});
  EXPECT_EQ(logger.lines(), 2u);
  EXPECT_EQ(logger.dropped(), 1u);
}

TEST(Logger, RuntimeHookBridgesIntoTheDefaultLogger) {
  // obs/log.cpp installs the bridge at static init; anything emitted via
  // runtime::log above the default logger's min level lands there.
  Logger& logger = mev::obs::default_logger();
  ASSERT_NE(mev::runtime::log_hook(), nullptr);
  const LogLevel saved = logger.min_level();
  logger.set_min_level(LogLevel::kOff);
  const std::uint64_t lines_before = logger.lines();
  mev::runtime::log(mev::runtime::LogLevel::kError, "runtime.test",
                    "should be gated");
  EXPECT_EQ(logger.lines(), lines_before);
  logger.set_min_level(saved);
}

TEST(Logger, ConcurrentWritersProduceWholeLines) {
  LogFixture f;
  Logger logger = f.make();
  constexpr int kThreads = 4;
  constexpr int kLines = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&logger, t] {
      for (int i = 0; i < kLines; ++i)
        logger.log(LogLevel::kInfo, "c", "line",
                   {LogField::i64_value("thread", t),
                    LogField::i64_value("i", i)});
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(logger.lines(),
            static_cast<std::uint64_t>(kThreads) * kLines);
  // Records never interleave: every line is valid on its own.
  std::istringstream lines(f.out.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(count, static_cast<std::size_t>(kThreads) * kLines);
}

#endif  // MEV_OBS_ENABLED

TEST(Logger, ApiIsCallableInEveryBuildConfiguration) {
  // In stub builds the logger is inert; either way this must compile and
  // not crash — including the macros with brace-list fields.
  std::ostringstream sink;
  LoggerConfig config;
  config.sink = &sink;
  Logger logger{config};
  logger.log(LogLevel::kError, "c", "smoke",
             {LogField::u64_value("n", 1), LogField::string("s", "x")});
  MEV_LOG(logger, LogLevel::kError, "c", "smoke");
  MEV_LOG_EVERY(logger, LogLevel::kError, 1.0, 1.0, "c", "smoke",
                {LogField::f64_value("v", 0.5)});
  (void)logger.lines();
  (void)logger.dropped();
  (void)mev::obs::default_logger();
  SUCCEED();
}

TEST(LogLevelParsing, RoundTripsAndFallsBack) {
  using mev::runtime::parse_log_level;
  EXPECT_EQ(parse_log_level("trace", LogLevel::kWarn), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug", LogLevel::kWarn), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info", LogLevel::kWarn), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn", LogLevel::kInfo), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error", LogLevel::kWarn), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off", LogLevel::kWarn), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus", LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level(nullptr, LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_STREQ(mev::runtime::to_string(LogLevel::kWarn), "warn");
}

}  // namespace
