file(REMOVE_RECURSE
  "CMakeFiles/test_defense.dir/defense/test_adv_training.cpp.o"
  "CMakeFiles/test_defense.dir/defense/test_adv_training.cpp.o.d"
  "CMakeFiles/test_defense.dir/defense/test_dim_reduction.cpp.o"
  "CMakeFiles/test_defense.dir/defense/test_dim_reduction.cpp.o.d"
  "CMakeFiles/test_defense.dir/defense/test_distillation.cpp.o"
  "CMakeFiles/test_defense.dir/defense/test_distillation.cpp.o.d"
  "CMakeFiles/test_defense.dir/defense/test_ensemble.cpp.o"
  "CMakeFiles/test_defense.dir/defense/test_ensemble.cpp.o.d"
  "CMakeFiles/test_defense.dir/defense/test_squeezing.cpp.o"
  "CMakeFiles/test_defense.dir/defense/test_squeezing.cpp.o.d"
  "test_defense"
  "test_defense.pdb"
  "test_defense[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
