#include "serve/stats.hpp"

#include <gtest/gtest.h>

namespace mev::serve {
namespace {

TEST(Log2Histogram, EmptyIsAllZero) {
  Log2Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50.0), 0.0);
}

TEST(Log2Histogram, TracksCountMinMaxMeanExactly) {
  Log2Histogram h;
  h.record(10);
  h.record(20);
  h.record(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Log2Histogram, ConstantValuePercentilesAreExact) {
  Log2Histogram h;
  for (int i = 0; i < 100; ++i) h.record(7);
  // Interpolation is clamped to the observed [min, max], so a constant
  // stream reports the constant at every percentile.
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 7.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 7.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 7.0);
}

TEST(Log2Histogram, PercentilesAreMonotoneAndBounded) {
  Log2Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  double prev = 0.0;
  for (double p : {1.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0}) {
    const double v = h.percentile(p);
    EXPECT_GE(v, prev) << p;
    EXPECT_GE(v, 1.0) << p;
    EXPECT_LE(v, 1000.0) << p;
    prev = v;
  }
  // Octave-resolution sanity: p50 of 1..1000 lands within a factor of 2.
  EXPECT_GE(h.percentile(50.0), 250.0);
  EXPECT_LE(h.percentile(50.0), 1000.0);
}

TEST(Log2Histogram, HandlesZeroAndHugeValues) {
  Log2Histogram h;
  h.record(0);
  h.record(~std::uint64_t{0});  // lands in (clamped) top bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), ~std::uint64_t{0});
}

TEST(Log2Histogram, MergeCombines) {
  Log2Histogram a, b;
  a.record(4);
  a.record(8);
  b.record(1);
  b.record(1024);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 1024u);
  EXPECT_DOUBLE_EQ(a.mean(), (4.0 + 8.0 + 1.0 + 1024.0) / 4.0);
  // Merging into empty copies.
  Log2Histogram c;
  c.merge(a);
  EXPECT_EQ(c.count(), 4u);
  EXPECT_EQ(c.min(), 1u);
}

TEST(Log2Histogram, ResetClears) {
  Log2Histogram h;
  h.record(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(99.0), 0.0);
}

TEST(ServiceStatsSummary, SummarizeReportsDigest) {
  Log2Histogram h;
  for (int i = 0; i < 10; ++i) h.record(100);
  const LatencySummary s = summarize(h);
  EXPECT_EQ(s.count, 10u);
  EXPECT_DOUBLE_EQ(s.mean, 100.0);
  EXPECT_DOUBLE_EQ(s.p50, 100.0);
  EXPECT_DOUBLE_EQ(s.p99, 100.0);
  EXPECT_EQ(s.max, 100u);
}

TEST(ServiceStatsSummary, ToStringMentionsEveryCounter) {
  ServiceStats stats;
  stats.accepted_requests = 3;
  stats.rejected_queue_full = 1;
  stats.rejected_deadline = 2;
  stats.e2e_latency_us.record(50);
  const std::string s = stats.to_string();
  EXPECT_NE(s.find("queue_full=1"), std::string::npos);
  EXPECT_NE(s.find("deadline=2"), std::string::npos);
  EXPECT_NE(s.find("e2e_latency"), std::string::npos);
  EXPECT_EQ(stats.rejected_total(), 3u);
}

TEST(ServiceStatsSummary, RejectedTotalCountsEveryReason) {
  ServiceStats stats;
  stats.rejected_queue_full = 1;
  stats.rejected_shutting_down = 2;
  stats.rejected_deadline = 4;
  stats.rejected_overloaded = 8;
  stats.rejected_internal = 16;
  EXPECT_EQ(stats.rejected_total(), 31u);
  const std::string s = stats.to_string();
  EXPECT_NE(s.find("overloaded=8"), std::string::npos);
  EXPECT_NE(s.find("internal=16"), std::string::npos);
}

TEST(ServiceStatsSummary, ToStringReportsFailurePosture) {
  ServiceStats stats;
  stats.rejected_deadline = 3;
  stats.expired_at_admission = 1;
  stats.expired_in_queue = 1;
  stats.expired_post_dequeue = 1;
  stats.callback_errors = 2;
  stats.batch_failures = 1;
  stats.worker_stalls = 4;
  stats.worker_recoveries = 3;
  stats.overload_state = 1;  // brownout
  stats.shed_fraction = 0.25;
  const std::string s = stats.to_string();
  EXPECT_NE(s.find("post_dequeue=1"), std::string::npos);
  EXPECT_NE(s.find("callback_errors=2"), std::string::npos);
  EXPECT_NE(s.find("stalls=4"), std::string::npos);
  EXPECT_NE(s.find("brownout"), std::string::npos);
}

}  // namespace
}  // namespace mev::serve
