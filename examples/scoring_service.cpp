// Scoring-service demo: the detector deployed as an in-process service.
// Several producer threads submit API logs and raw count batches while a
// defense retrain (defensive distillation) is hot-swapped in mid-run with
// zero downtime; the run ends with the service's stats summary.
//
//   ./scoring_service [tiny|fast|full]
#include <atomic>
#include <future>
#include <iostream>
#include <thread>
#include <vector>

#include "core/detector.hpp"
#include "core/experiment_config.hpp"
#include "data/api_vocab.hpp"
#include "data/synthetic.hpp"
#include "defense/distillation.hpp"
#include "serve/scoring_service.hpp"

using namespace mev;

int main(int argc, char** argv) {
  const auto config =
      core::ExperimentConfig::from_name(argc > 1 ? argv[1] : "tiny");
  const auto& vocab = data::ApiVocab::instance();
  const data::GenerativeModel generator(vocab, data::GenerativeConfig{});
  math::Rng rng(config.seed);

  std::cout << "[1/4] training the target detector...\n";
  const data::DatasetBundle bundle =
      generator.generate_bundle(config.dataset_spec(), rng);
  auto trained = core::train_detector(bundle, config.target_architecture(),
                                      config.target_training(), vocab);

  std::cout << "[2/4] starting the scoring service (4 workers, "
               "max_batch=64, window=2ms)...\n";
  serve::ServiceConfig service_cfg;
  service_cfg.workers = 4;
  service_cfg.max_batch_rows = 64;
  service_cfg.max_queue_delay_ms = 2;
  serve::ScoringService service(trained.detector->pipeline(),
                                trained.detector->network_ptr(), service_cfg);

  // Producers: half submit individual sandbox logs, half submit raw count
  // batches — both arrive through the same submit() front door.
  std::cout << "[3/4] submitting traffic from 4 producer threads while "
               "hot-swapping a distilled model...\n";
  std::atomic<std::size_t> malware_verdicts{0};
  std::atomic<std::size_t> scored_rows{0};
  std::vector<std::thread> producers;
  const std::size_t per_producer = config.dataset_spec().test_malware;
  for (std::size_t p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      math::Rng producer_rng(config.seed + 100 + p);
      const auto& extractor = trained.detector->pipeline().extractor();
      std::vector<std::future<serve::ScoreResult>> futures;
      for (std::size_t i = 0; i < per_producer; ++i) {
        const int label =
            (i % 2 == 0) ? data::kMalwareLabel : data::kCleanLabel;
        const data::ApiLog log = generator.generate_log(
            label, "sample.exe", producer_rng);
        math::Matrix counts(1, vocab.size());
        counts.set_row(0, extractor.extract(log));
        futures.push_back(service.submit(std::move(counts)));
      }
      for (auto& future : futures) {
        const serve::ScoreResult result = future.get();
        if (!result.ok()) continue;
        scored_rows += result.verdicts.size();
        for (const auto& verdict : result.verdicts)
          if (verdict.is_malware()) ++malware_verdicts;
      }
    });
  }

  // Meanwhile: retrain with defensive distillation and roll it out with
  // zero downtime. In-flight batches finish on the old model; every batch
  // formed after swap_model() uses the student.
  defense::DistillationConfig distill_cfg;
  distill_cfg.teacher_architecture = config.target_architecture();
  distill_cfg.student_architecture = config.target_architecture();
  distill_cfg.teacher_training = config.target_training();
  distill_cfg.student_training = config.target_training();
  const nn::LabeledData train_data{trained.train_features,
                                   bundle.train.labels};
  const auto distilled =
      defense::defensive_distillation(train_data, distill_cfg);
  const std::uint64_t version = service.swap_model(
      trained.detector->pipeline(), distilled.student);
  std::cout << "      swapped in distilled model (snapshot v" << version
            << ") while producers were mid-flight\n";

  for (auto& producer : producers) producer.join();
  service.shutdown();  // drain

  std::cout << "[4/4] done: scored " << scored_rows.load() << " rows, "
            << malware_verdicts.load() << " malware verdicts\n\n";
  std::cout << "service stats:\n" << service.stats().to_string();
  return 0;
}
