#include "eval/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace mev::eval {
namespace {

TEST(Confusion, CountsAllQuadrants) {
  // labels:      1 1 0 0 1 0
  // predictions: 1 0 0 1 1 0
  const auto cm = confusion({1, 1, 0, 0, 1, 0}, {1, 0, 0, 1, 1, 0});
  EXPECT_EQ(cm.true_positive, 2u);
  EXPECT_EQ(cm.false_negative, 1u);
  EXPECT_EQ(cm.true_negative, 2u);
  EXPECT_EQ(cm.false_positive, 1u);
  EXPECT_EQ(cm.total(), 6u);
}

TEST(Confusion, Rates) {
  const auto cm = confusion({1, 1, 0, 0, 1, 0}, {1, 0, 0, 1, 1, 0});
  EXPECT_NEAR(cm.tpr(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(cm.fnr(), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(cm.tnr(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(cm.fpr(), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(cm.accuracy(), 4.0 / 6.0, 1e-9);
  EXPECT_NEAR(cm.precision(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(cm.f1(), 2.0 / 3.0, 1e-9);
}

TEST(Confusion, NanForAbsentClassMatchesPaperTable6) {
  // A malware-only evaluation set has no negatives -> TNR is "nan".
  const auto cm = confusion({1, 1, 1}, {1, 0, 1});
  EXPECT_TRUE(std::isnan(cm.tnr()));
  EXPECT_TRUE(std::isnan(cm.fpr()));
  EXPECT_NEAR(cm.tpr(), 2.0 / 3.0, 1e-9);

  const auto clean_only = confusion({0, 0}, {0, 1});
  EXPECT_TRUE(std::isnan(clean_only.tpr()));
  EXPECT_NEAR(clean_only.tnr(), 0.5, 1e-9);
}

TEST(Confusion, SizeMismatchThrows) {
  EXPECT_THROW(confusion({1}, {1, 0}), std::invalid_argument);
}

TEST(Confusion, ToStringContainsCounts) {
  const auto cm = confusion({1, 0}, {1, 0});
  const std::string s = cm.to_string();
  EXPECT_NE(s.find("TP=1"), std::string::npos);
  EXPECT_NE(s.find("TN=1"), std::string::npos);
}

TEST(DetectionRate, Basics) {
  EXPECT_DOUBLE_EQ(detection_rate({1, 1, 0, 1}), 0.75);
  EXPECT_DOUBLE_EQ(evasion_rate({1, 1, 0, 1}), 0.25);
  EXPECT_TRUE(std::isnan(detection_rate({})));
}

TEST(DetectionRate, AllDetectedAndNone) {
  EXPECT_DOUBLE_EQ(detection_rate({1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(detection_rate({0, 0}), 0.0);
}

TEST(Confusion, PerfectClassifier) {
  const auto cm = confusion({1, 0, 1, 0}, {1, 0, 1, 0});
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.tpr(), 1.0);
  EXPECT_DOUBLE_EQ(cm.tnr(), 1.0);
  EXPECT_DOUBLE_EQ(cm.f1(), 1.0);
}

TEST(Confusion, F1NanWhenNoPositivesPredicted) {
  const auto cm = confusion({1, 1}, {0, 0});
  EXPECT_TRUE(std::isnan(cm.precision()));
  EXPECT_TRUE(std::isnan(cm.f1()));
}

}  // namespace
}  // namespace mev::eval
