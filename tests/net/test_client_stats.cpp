// ClientStatsTracker: bounded per-client cardinality, the /clientz JSON
// shape, the PSI gauge mirror, and the end-to-end acceptance scenario —
// two API keys share /v1/score, one shifts its query mix and its
// per-client PSI crosses the major-drift threshold while the steady
// key's stays near zero.
#include "net/client_stats.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/api_vocab.hpp"
#include "features/transform.hpp"
#include "math/rng.hpp"
#include "net/frontend.hpp"
#include "net/wire.hpp"
#include "runtime/clock.hpp"

namespace mev::net {
namespace {

constexpr std::uint64_t kSecond = 1'000'000;

ClientStatsConfig small_config() {
  ClientStatsConfig config;
  config.window = {/*bucket_us=*/kSecond, /*buckets=*/4};
  config.drift.window = {kSecond, 4};
  config.drift.reference_min_count = 4;
  return config;
}

TEST(ClientStatsTracker, EntriesAreStableAndBoundedByTheCap) {
  ClientStatsConfig config = small_config();
  config.max_clients = 2;
  ClientStatsTracker tracker(config);

  ClientEntry* a = tracker.entry("alpha");
  ClientEntry* b = tracker.entry("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(tracker.entry("alpha"), a);  // stable pointer identity

  // Beyond the cap every new label collapses into one shared overflow
  // entry: a key-churning attacker cannot balloon the table.
  ClientEntry* c = tracker.entry("gamma");
  ClientEntry* d = tracker.entry("delta");
  EXPECT_EQ(c, d);
  EXPECT_EQ(c->client, "(overflow)");
  EXPECT_EQ(tracker.size(), 3u);  // alpha, beta, (overflow)
  // Known labels keep resolving to their own entries at the cap.
  EXPECT_EQ(tracker.entry("beta"), b);
}

TEST(ClientStatsTracker, ToJsonCarriesWindowedRatesAndDrift) {
  ClientStatsTracker tracker(small_config());
  ClientEntry* alpha = tracker.entry("alpha");
  // 10 requests x 4 rows over 2 s, 2 rejections, enough scores to freeze
  // the 4-score reference.
  for (int i = 0; i < 10; ++i)
    alpha->record_request(static_cast<std::uint64_t>(i) * 200'000, 4);
  alpha->record_reject(kSecond);
  alpha->record_reject(kSecond);
  for (int i = 0; i < 6; ++i) alpha->record_score(kSecond, 0.15);

  const std::string json = tracker.to_json(2 * kSecond);
  EXPECT_NE(json.find("\"window_s\":4"), std::string::npos);
  EXPECT_NE(json.find("\"client\":\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"reject_rate\":0.200000"), std::string::npos);
  EXPECT_NE(json.find("\"reference_frozen\":true"), std::string::npos);
  EXPECT_NE(json.find("\"lifetime_requests\":10"), std::string::npos);
  EXPECT_NE(json.find("\"lifetime_rows\":40"), std::string::npos);
  EXPECT_NE(json.find("\"lifetime_rejected\":2"), std::string::npos);
  // Matching traffic: the frozen reference sees no drift.
  EXPECT_NE(json.find("\"score_psi\":0.0"), std::string::npos);
}

TEST(ClientStatsTracker, RatesUseTheSlidingWindowNotLifetime) {
  ClientStatsTracker tracker(small_config());
  ClientEntry* alpha = tracker.entry("alpha");
  for (int i = 0; i < 8; ++i) alpha->record_request(kSecond, 1);
  // 10 s later the burst left the 4 s window: windowed rate reads 0 while
  // the lifetime counter remembers all 8.
  EXPECT_EQ(alpha->requests.total(10 * kSecond), 0u);
  EXPECT_EQ(alpha->lifetime_requests.load(), 8u);
}

#if MEV_OBS_ENABLED
TEST(ClientStatsTracker, PsiGaugesAreMirroredPerClient) {
  obs::MetricsRegistry registry;
  ClientStatsTracker tracker(small_config(), &registry);
  ClientEntry* alpha = tracker.entry("alpha");
  for (int i = 0; i < 4; ++i) alpha->record_score(100, 0.1);  // freeze
  // The mix flips; once the capture-era scores expire the PSI is large.
  for (int i = 0; i < 20; ++i) alpha->record_score(10 * kSecond, 0.95);
  (void)tracker.to_json(10 * kSecond + 1);  // refreshes the gauges
  const std::string exposition = registry.prometheus();
  const std::size_t at = exposition.find("mev_net_client_psi{client=\"alpha\"} ");
  ASSERT_NE(at, std::string::npos) << exposition;
  // The sample value is the PSI itself — well past the 0.25 threshold.
  EXPECT_GT(alpha->drift.psi(10 * kSecond + 1), 0.25);
}
#endif  // MEV_OBS_ENABLED

// ---------------------------------------------------------------------------
// End-to-end: per-key drift through POST /v1/score.

constexpr std::size_t kDim = data::kNumApiFeatures;

math::Matrix random_counts(std::size_t rows, std::uint64_t seed) {
  math::Rng rng(seed);
  math::Matrix m(rows, kDim);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.poisson(3.0));
  return m;
}

math::Matrix constant_counts(std::size_t rows, float value) {
  math::Matrix m(rows, kDim);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = value;
  return m;
}

features::FeaturePipeline make_pipeline(std::uint64_t seed) {
  auto transform = std::make_unique<features::CountTransform>();
  transform->fit(random_counts(64, seed));
  return features::FeaturePipeline(data::ApiVocab::instance(),
                                   std::move(transform));
}

std::shared_ptr<nn::Network> make_network(std::uint64_t seed) {
  nn::MlpConfig cfg;
  cfg.dims = {kDim, 16, 2};
  cfg.seed = seed;
  return std::make_shared<nn::Network>(nn::make_mlp(cfg));
}

std::string post_score(const std::string& body, const std::string& key) {
  return "POST /v1/score HTTP/1.1\r\nContent-Type: " +
         std::string(kBinaryContentType) +
         "\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\nX-Api-Key: " + key + "\r\n\r\n" + body;
}

/// Same minimal blocking client as test_frontend.cpp.
class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  void send_raw(const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return;
      sent += static_cast<std::size_t>(n);
    }
  }

  std::string read_response() {
    for (;;) {
      const std::size_t header_end = buffer_.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        const std::string headers = buffer_.substr(0, header_end + 4);
        std::size_t body_len = 0;
        const std::size_t cl = headers.find("Content-Length: ");
        if (cl != std::string::npos)
          body_len = static_cast<std::size_t>(
              std::stoul(headers.substr(cl + 16)));
        if (buffer_.size() >= header_end + 4 + body_len) {
          const std::string response =
              buffer_.substr(0, header_end + 4 + body_len);
          buffer_.erase(0, header_end + 4 + body_len);
          return response;
        }
      }
      char chunk[8192];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

int status_of(const std::string& response) {
  if (response.size() < 12 || response.compare(0, 9, "HTTP/1.1 ") != 0)
    return -1;
  return std::stoi(response.substr(9, 3));
}

// The acceptance scenario: the paper's black-box prober is ONE caller
// among many. Both keys freeze their reference on the same benign mix;
// the probe key then shifts to extreme inputs, moving its confidence
// distribution — its PSI crosses the major-drift threshold (0.25) while
// the steady key, still sending the original mix, stays near zero.
TEST(ScoringFrontend, ProbingKeyDriftsWhileSteadyKeyStaysFlat) {
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.admin.enabled = true;
  cfg.admin.port = 0;
  serve::ScoringService service(make_pipeline(7), make_network(11), cfg);
#if MEV_OBS_ENABLED
  ASSERT_NE(service.admin_server(), nullptr);
#endif

  FrontendConfig config;
  config.port = 0;
  config.worker_threads = 2;
  config.io_timeout_ms = 3000;
  config.api_keys = {ApiKey{"steady-key", "steady", 1e9, 1e9},
                     ApiKey{"probe-key", "probe", 1e9, 1e9}};
  config.client_stats.drift.reference_min_count = 8;
  config.admin = service.admin_server();
  {
    ScoringFrontend frontend(service, config);
    ASSERT_TRUE(frontend.start());

    Client client(frontend.port());
    ASSERT_TRUE(client.ok());
    // Phase 1: both keys send the same benign batch; 8 verdicts freeze
    // each key's reference on that mix.
    const std::string benign = encode_binary_rows(constant_counts(8, 0.0f));
    client.send_raw(post_score(benign, "steady-key"));
    ASSERT_EQ(status_of(client.read_response()), 200);
    client.send_raw(post_score(benign, "probe-key"));
    ASSERT_EQ(status_of(client.read_response()), 200);

    // Phase 2: the probe key flips to an asymmetric high-count mix (5 x
    // 8 rows) that drags the model's confidence out of the benign bin;
    // the steady key keeps sending the reference mix.
    math::Matrix probe_rows(8, kDim);
    for (std::size_t r = 0; r < probe_rows.rows(); ++r)
      for (std::size_t c = 0; c < kDim; ++c)
        probe_rows.data()[r * kDim + c] = c >= kDim / 2 ? 50'000.0f : 0.0f;
    const std::string probing = encode_binary_rows(probe_rows);
    for (int i = 0; i < 5; ++i) {
      client.send_raw(post_score(probing, "probe-key"));
      ASSERT_EQ(status_of(client.read_response()), 200);
    }
    client.send_raw(post_score(benign, "steady-key"));
    ASSERT_EQ(status_of(client.read_response()), 200);

    const std::uint64_t now_us = service.clock().now_us();
    ClientStatsTracker& clients = frontend.client_stats();
    ASSERT_TRUE(clients.entry("probe")->drift.reference_frozen());
    ASSERT_TRUE(clients.entry("steady")->drift.reference_frozen());
    const double probe_psi = clients.entry("probe")->drift.psi(now_us);
    const double steady_psi = clients.entry("steady")->drift.psi(now_us);
    EXPECT_GT(probe_psi, 0.25) << "probe mix shifted but PSI is flat";
    EXPECT_LT(steady_psi, 0.1) << "steady mix must not read as drift";

#if MEV_OBS_ENABLED
    // /clientz (registered by the frontend on the service's admin plane)
    // reports both keys; the index page lists the extra endpoint.
    // The admin plane is connection-per-request: fresh socket each time.
    Client admin(service.admin_server()->port());
    ASSERT_TRUE(admin.ok());
    admin.send_raw("GET /clientz HTTP/1.1\r\n\r\n");
    const std::string clientz = admin.read_response();
    EXPECT_EQ(status_of(clientz), 200);
    EXPECT_NE(clientz.find("\"client\":\"probe\""), std::string::npos);
    EXPECT_NE(clientz.find("\"client\":\"steady\""), std::string::npos);
    EXPECT_NE(clientz.find("\"reference_frozen\":true"), std::string::npos);
    Client admin_index(service.admin_server()->port());
    ASSERT_TRUE(admin_index.ok());
    admin_index.send_raw("GET / HTTP/1.1\r\n\r\n");
    const std::string index = admin_index.read_response();
    EXPECT_EQ(status_of(index), 200);
    EXPECT_NE(index.find("/clientz"), std::string::npos);
#endif  // MEV_OBS_ENABLED
  }
#if MEV_OBS_ENABLED
  // The frontend deregistered /clientz on destruction; the admin plane
  // (which outlives it) answers 404 instead of calling a dead handler.
  Client admin(service.admin_server()->port());
  ASSERT_TRUE(admin.ok());
  admin.send_raw("GET /clientz HTTP/1.1\r\n\r\n");
  EXPECT_EQ(status_of(admin.read_response()), 404);
#endif  // MEV_OBS_ENABLED
}

}  // namespace
}  // namespace mev::net
