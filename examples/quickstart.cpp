// Quickstart: train an ML malware detector on synthetic API logs, scan a
// malware and a clean sample, and print test-set metrics.
//
//   ./quickstart [tiny|fast|full]
#include <iostream>

#include "core/detector.hpp"
#include "core/experiment_config.hpp"
#include "data/api_vocab.hpp"
#include "data/synthetic.hpp"
#include "eval/metrics.hpp"
#include "eval/report.hpp"

using namespace mev;

int main(int argc, char** argv) {
  const auto config =
      core::ExperimentConfig::from_name(argc > 1 ? argv[1] : "tiny");
  const auto& vocab = data::ApiVocab::instance();

  // 1. Generate a Table I-proportioned synthetic corpus.
  std::cout << "[1/4] generating synthetic corpus ("
            << core::to_string(config.scale) << " scale)...\n";
  const data::GenerativeModel generator(vocab, data::GenerativeConfig{});
  math::Rng rng(config.seed);
  const data::DatasetBundle bundle =
      generator.generate_bundle(config.dataset_spec(), rng);
  std::cout << data::describe(config.dataset_spec()) << "\n";

  // 2. Train the detector (count transform + 4-layer DNN).
  std::cout << "[2/4] training the detector...\n";
  auto trained = core::train_detector(bundle, config.target_architecture(),
                                      config.target_training(), vocab);
  core::MalwareDetector& detector = *trained.detector;

  // 3. Scan one malware log and one clean log end to end.
  std::cout << "[3/4] scanning two fresh samples...\n";
  const data::ApiLog malware_log =
      generator.generate_log(data::kMalwareLabel, "invoice_final.exe", rng);
  const data::ApiLog clean_log =
      generator.generate_log(data::kCleanLabel, "notepad_clone.exe", rng);
  const core::Verdict v_mal = detector.scan(malware_log);
  const core::Verdict v_clean = detector.scan(clean_log);
  std::cout << "  " << malware_log.sample_name << " ("
            << malware_log.calls.size() << " API calls): P(malware) = "
            << v_mal.malware_confidence
            << (v_mal.is_malware() ? "  -> MALWARE\n" : "  -> clean\n");
  std::cout << "  " << clean_log.sample_name << " ("
            << clean_log.calls.size() << " API calls): P(malware) = "
            << v_clean.malware_confidence
            << (v_clean.is_malware() ? "  -> MALWARE\n" : "  -> clean\n");

  // 4. Test-set confusion matrix.
  std::cout << "[4/4] evaluating on the drifted (VirusTotal-like) test set...\n";
  const auto verdicts = detector.scan_features(trained.test_features);
  std::vector<int> preds(verdicts.size());
  for (std::size_t i = 0; i < verdicts.size(); ++i)
    preds[i] = verdicts[i].predicted_class;
  const auto cm = eval::confusion(bundle.test.labels, preds);
  eval::Table table("Detector test metrics (no attack, no defense)");
  table.header({"metric", "value"});
  table.row({"TPR (malware detection rate)", eval::Table::fmt_or_nan(cm.tpr())});
  table.row({"TNR (clean pass rate)", eval::Table::fmt_or_nan(cm.tnr())});
  table.row({"accuracy", eval::Table::fmt_or_nan(cm.accuracy())});
  table.row({"F1", eval::Table::fmt_or_nan(cm.f1())});
  std::cout << table.render();
  return 0;
}
