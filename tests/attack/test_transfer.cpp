#include "attack/transfer.hpp"

#include <gtest/gtest.h>

#include "nn/trainer.hpp"

namespace mev::attack {
namespace {

TEST(Transfer, EmptyResult) {
  nn::MlpConfig cfg;
  cfg.dims = {4, 8, 2};
  nn::Network net = nn::make_mlp(cfg);
  AttackResult crafted;
  crafted.adversarial = math::Matrix(0, 4);
  const TransferResult r = evaluate_transfer(net, crafted);
  EXPECT_EQ(r.total, 0u);
  EXPECT_EQ(r.evaded_count, 0u);
}

TEST(Transfer, RatesAreConsistent) {
  nn::MlpConfig cfg;
  cfg.dims = {4, 8, 2};
  cfg.seed = 9;
  nn::Network net = nn::make_mlp(cfg);
  math::Rng rng(10);
  AttackResult crafted;
  crafted.adversarial = math::Matrix(20, 4);
  for (std::size_t i = 0; i < crafted.adversarial.size(); ++i)
    crafted.adversarial.data()[i] = static_cast<float>(rng.uniform());
  crafted.evaded.assign(20, true);
  crafted.features_changed.assign(20, 1);
  crafted.l2_perturbation.assign(20, 0.1);

  const TransferResult r = evaluate_transfer(net, crafted);
  EXPECT_EQ(r.total, 20u);
  EXPECT_NEAR(r.transfer_rate + r.target_detection_rate, 1.0, 1e-9);
  EXPECT_EQ(r.evaded_count,
            static_cast<std::size_t>(r.transfer_rate * 20 + 0.5));
  EXPECT_DOUBLE_EQ(r.craft_success_rate, 1.0);
}

}  // namespace
}  // namespace mev::attack
