// W3C traceparent parsing: the malformed-header matrix (every bad input
// yields an invalid context, never an error), the exact-length rules per
// version, round-trip formatting, and TraceIdGenerator determinism. This
// file exercises code compiled in EVERY build mode — no MEV_OBS_ENABLED
// guards.
#include "obs/trace_context.hpp"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace {

using mev::obs::format_hex64;
using mev::obs::format_trace_id;
using mev::obs::format_traceparent;
using mev::obs::parse_hex64;
using mev::obs::parse_traceparent;
using mev::obs::TraceContext;
using mev::obs::TraceIdGenerator;

constexpr const char* kGood =
    "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";

TEST(TraceParent, ParsesTheSpecExample) {
  const TraceContext ctx = parse_traceparent(kGood);
  ASSERT_TRUE(ctx.valid());
  EXPECT_EQ(ctx.trace_hi, 0x0af7651916cd43ddULL);
  EXPECT_EQ(ctx.trace_id, 0x8448eb211c80319cULL);
  EXPECT_EQ(ctx.span_id, 0xb7ad6b7169203331ULL);
}

TEST(TraceParent, UppercaseHexIsAccepted) {
  const TraceContext ctx = parse_traceparent(
      "00-0AF7651916CD43DD8448EB211C80319C-B7AD6B7169203331-01");
  ASSERT_TRUE(ctx.valid());
  EXPECT_EQ(ctx.trace_id, 0x8448eb211c80319cULL);
}

// The malformed matrix: every row must yield an INVALID context. The
// serving contract layered on top (test_frontend_tracing.cpp) is that
// such requests are still served with a fresh trace — parsing itself must
// simply refuse to correlate.
TEST(TraceParent, MalformedHeadersYieldInvalidContexts) {
  const char* kBad[] = {
      // Version "ff" is explicitly forbidden by the spec.
      "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
      // Wrong length: truncated trace id.
      "00-0af7651916cd43dd8448eb211c8031-b7ad6b7169203331-01",
      // Wrong length: truncated parent id.
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b71692033-01",
      // Version 00 must be EXACTLY 55 chars: trailing junk is malformed.
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01x",
      // Non-hex digit in the trace id.
      "00-0af7651916cd43dg8448eb211c80319c-b7ad6b7169203331-01",
      // Non-hex digit in the parent id.
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333z-01",
      // Non-hex version.
      "zz-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
      // All-zero trace id is forbidden.
      "00-00000000000000000000000000000000-b7ad6b7169203331-01",
      // All-zero parent id is forbidden.
      "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
      // Zero LOW half: the internal 64-bit identity would be zero, which
      // this implementation treats as unusable.
      "00-0af7651916cd43dd0000000000000000-b7ad6b7169203331-01",
      // Dashes in the wrong places.
      "00x0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
      "00-0af7651916cd43dd8448eb211c80319cxb7ad6b7169203331-01",
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331x01",
      // Empty / absurdly short / garbage.
      "",
      "00",
      "hello world",
      "00-abc-def-01",
  };
  for (const char* header : kBad) {
    const TraceContext ctx = parse_traceparent(header);
    EXPECT_FALSE(ctx.valid()) << "accepted malformed: \"" << header << '"';
    EXPECT_EQ(ctx.trace_id, 0u) << header;
  }
}

TEST(TraceParent, FutureVersionsAllowLongerHeadersWithADash) {
  // Per spec, a parser for version 00 must accept a HIGHER version whose
  // first 55 chars parse, provided char 55 is a dash.
  const TraceContext ok = parse_traceparent(
      "cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extrafield");
  EXPECT_TRUE(ok.valid());
  // ...but longer with NO dash at 55 is malformed.
  const TraceContext bad = parse_traceparent(
      "cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01extrafield");
  EXPECT_FALSE(bad.valid());
}

TEST(TraceParent, FormatRoundTripsThroughParse) {
  const TraceContext original = parse_traceparent(kGood);
  const std::string header = format_traceparent(original);
  EXPECT_EQ(header, "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01");
  const TraceContext reparsed = parse_traceparent(header);
  EXPECT_EQ(reparsed.trace_id, original.trace_id);
  EXPECT_EQ(reparsed.trace_hi, original.trace_hi);
  EXPECT_EQ(reparsed.span_id, original.span_id);
}

TEST(TraceParent, FormatTraceIdIsTheFull32HexId) {
  const TraceContext ctx = parse_traceparent(kGood);
  EXPECT_EQ(format_trace_id(ctx), "0af7651916cd43dd8448eb211c80319c");
  // A locally-minted context (no W3C high half) zero-pads the high 64.
  TraceContext local;
  local.trace_id = 0xabcULL;
  EXPECT_EQ(format_trace_id(local), "00000000000000000000000000000abc");
}

TEST(Hex64, FormatAndParseRoundTrip) {
  EXPECT_EQ(format_hex64(0xdeadbeef01020304ULL), "deadbeef01020304");
  std::uint64_t value = 0;
  ASSERT_TRUE(parse_hex64("deadbeef01020304", &value));
  EXPECT_EQ(value, 0xdeadbeef01020304ULL);
  ASSERT_TRUE(parse_hex64("DEADBEEF01020304", &value));
  EXPECT_EQ(value, 0xdeadbeef01020304ULL);
  EXPECT_FALSE(parse_hex64("deadbeef0102030", &value));    // 15 chars
  EXPECT_FALSE(parse_hex64("deadbeef010203045", &value));  // 17 chars
  EXPECT_FALSE(parse_hex64("deadbeef0102030g", &value));   // non-hex
  EXPECT_FALSE(parse_hex64("", &value));
}

TEST(TraceIdGenerator, SameSeedSameSequence) {
  TraceIdGenerator a(1234), b(1234);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next(), b.next()) << i;
}

TEST(TraceIdGenerator, DifferentSeedsDiverge) {
  TraceIdGenerator a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) differing += a.next() != b.next();
  EXPECT_GT(differing, 12);
}

TEST(TraceIdGenerator, NeverReturnsZeroAndRarelyCollides) {
  TraceIdGenerator gen(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 4096; ++i) {
    const std::uint64_t id = gen.next();
    EXPECT_NE(id, 0u);
    seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 4096u);
}

}  // namespace
