#include "obs/trace_context.hpp"

namespace mev::obs {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// Parses `count` hex chars from s[pos..]; false on any non-hex digit.
bool parse_hex(std::string_view s, std::size_t pos, std::size_t count,
               std::uint64_t* out) noexcept {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const int digit = hex_value(s[pos + i]);
    if (digit < 0) return false;
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  *out = value;
  return true;
}

void append_hex64(std::string& out, std::uint64_t value) {
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kHexDigits[(value >> shift) & 0xf]);
  }
}

}  // namespace

TraceContext parse_traceparent(std::string_view header) noexcept {
  // version(2) '-' trace-id(32) '-' parent-id(16) '-' flags(2) == 55 chars.
  // Unknown future versions may append fields after the flags, but only
  // behind another dash; version "ff" is explicitly forbidden by the spec.
  constexpr std::size_t kBaseLength = 55;
  if (header.size() < kBaseLength) return {};
  if (header[2] != '-' || header[35] != '-' || header[52] != '-') return {};

  std::uint64_t version = 0;
  if (!parse_hex(header, 0, 2, &version)) return {};
  if (version == 0xff) return {};
  if (version == 0x00 && header.size() != kBaseLength) return {};
  if (header.size() > kBaseLength && header[kBaseLength] != '-') return {};

  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t parent = 0;
  std::uint64_t flags = 0;
  if (!parse_hex(header, 3, 16, &trace_hi)) return {};
  if (!parse_hex(header, 19, 16, &trace_lo)) return {};
  if (!parse_hex(header, 36, 16, &parent)) return {};
  if (!parse_hex(header, 53, 2, &flags)) return {};

  if (trace_hi == 0 && trace_lo == 0) return {};  // all-zero trace id
  if (parent == 0) return {};                     // all-zero parent id
  // The low 64 bits are the internal identity; a nonzero-high/zero-low id
  // cannot be represented as a valid context, so treat it as unusable.
  if (trace_lo == 0) return {};

  TraceContext ctx;
  ctx.trace_id = trace_lo;
  ctx.trace_hi = trace_hi;
  ctx.span_id = parent;
  return ctx;
}

std::string format_traceparent(const TraceContext& ctx) {
  std::string out;
  out.reserve(55);
  out += "00-";
  append_hex64(out, ctx.trace_hi);
  append_hex64(out, ctx.trace_id);
  out.push_back('-');
  append_hex64(out, ctx.span_id);
  out += "-01";
  return out;
}

std::string format_trace_id(const TraceContext& ctx) {
  std::string out;
  out.reserve(32);
  append_hex64(out, ctx.trace_hi);
  append_hex64(out, ctx.trace_id);
  return out;
}

std::string format_hex64(std::uint64_t id) {
  std::string out;
  out.reserve(16);
  append_hex64(out, id);
  return out;
}

bool parse_hex64(std::string_view s, std::uint64_t* out) noexcept {
  if (s.size() != 16) return false;
  return parse_hex(s, 0, 16, out);
}

}  // namespace mev::obs
