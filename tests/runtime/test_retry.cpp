#include "runtime/retry.hpp"

#include <gtest/gtest.h>

#include "runtime/clock.hpp"

namespace mev::runtime {
namespace {

TEST(RetryPolicy, ZeroJitterGivesExactExponentialSequence) {
  RetryPolicy p;
  p.initial_backoff_ms = 10;
  p.backoff_multiplier = 2.0;
  p.max_backoff_ms = 1000;
  p.jitter = 0.0;
  math::Rng rng(1);
  EXPECT_EQ(backoff_delay_ms(p, 0, rng), 10u);
  EXPECT_EQ(backoff_delay_ms(p, 1, rng), 20u);
  EXPECT_EQ(backoff_delay_ms(p, 2, rng), 40u);
  EXPECT_EQ(backoff_delay_ms(p, 3, rng), 80u);
}

TEST(RetryPolicy, DelayIsCappedAtMaxBackoff) {
  RetryPolicy p;
  p.initial_backoff_ms = 10;
  p.backoff_multiplier = 10.0;
  p.max_backoff_ms = 500;
  p.jitter = 0.0;
  math::Rng rng(1);
  EXPECT_EQ(backoff_delay_ms(p, 5, rng), 500u);
}

TEST(RetryPolicy, JitterStaysWithinBounds) {
  RetryPolicy p;
  p.initial_backoff_ms = 100;
  p.backoff_multiplier = 1.0;
  p.max_backoff_ms = 1000;
  p.jitter = 0.2;
  math::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t d = backoff_delay_ms(p, 0, rng);
    EXPECT_GE(d, 80u);
    EXPECT_LE(d, 120u);
  }
}

TEST(RetryPolicy, JitterIsDeterministicPerSeed) {
  RetryPolicy p;
  p.jitter = 0.5;
  math::Rng a(42), b(42), c(43);
  std::vector<std::uint64_t> seq_a, seq_b, seq_c;
  for (int i = 0; i < 16; ++i) {
    seq_a.push_back(backoff_delay_ms(p, i, a));
    seq_b.push_back(backoff_delay_ms(p, i, b));
    seq_c.push_back(backoff_delay_ms(p, i, c));
  }
  EXPECT_EQ(seq_a, seq_b);
  EXPECT_NE(seq_a, seq_c);
}

TEST(RetryPolicy, NoneIsSingleAttemptNoBackoff) {
  const RetryPolicy p = RetryPolicy::none();
  EXPECT_EQ(p.max_attempts, 1u);
  math::Rng rng(1);
  EXPECT_EQ(backoff_delay_ms(p, 0, rng), 0u);
}

TEST(FakeClock, SleepAdvancesTimeAndRecords) {
  FakeClock clock(100);
  EXPECT_EQ(clock.now_ms(), 100u);
  clock.sleep_ms(50);
  clock.sleep_ms(25);
  EXPECT_EQ(clock.now_ms(), 175u);
  ASSERT_EQ(clock.sleeps().size(), 2u);
  EXPECT_EQ(clock.total_slept_ms(), 75u);
  clock.advance(10);
  EXPECT_EQ(clock.now_ms(), 185u);
  EXPECT_EQ(clock.sleeps().size(), 2u);  // advance() is not a sleep
}

}  // namespace
}  // namespace mev::runtime
