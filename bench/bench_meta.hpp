// The provenance block every BENCH_*.json carries under the "meta" key:
// git SHA, build flags, and the box's hardware_concurrency. Without it a
// bench trajectory across commits/boxes is unattributable — a regression
// report cannot say whether the code or the machine changed.
// check_regression.py ignores the key entirely.
//
// MEV_GIT_SHA / MEV_BUILD_FLAGS are configure-time compile definitions
// from bench/CMakeLists.txt; the fallbacks keep out-of-tree compiles
// working.
#pragma once

#include <algorithm>
#include <ostream>
#include <string>
#include <thread>

#ifndef MEV_GIT_SHA
#define MEV_GIT_SHA "unknown"
#endif
#ifndef MEV_BUILD_FLAGS
#define MEV_BUILD_FLAGS "unknown"
#endif

namespace mev::bench {

inline std::string meta_json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    if (static_cast<unsigned char>(*s) >= 0x20) out += *s;
  }
  return out;
}

/// Writes `"meta": {...}` (no trailing comma or newline) at `indent`.
inline void write_meta_json(std::ostream& os, const char* indent = "  ") {
  os << indent << "\"meta\": {\"git_sha\": \""
     << meta_json_escape(MEV_GIT_SHA) << "\", \"build_flags\": \""
     << meta_json_escape(MEV_BUILD_FLAGS)
     << "\", \"hardware_concurrency\": "
     << std::max(1u, std::thread::hardware_concurrency()) << "}";
}

}  // namespace mev::bench
