// API-call log files — the raw input of the detection pipeline.
//
// The text format matches the paper's Table II excerpt:
//
//   GetStartupInfoW:7FEFDD39C37 ()"61468"
//   GetProcAddress:13FBC34D6 (76D30000,"FlsAlloc")"61484"
//
// i.e. `<api>:<hex return address> (<raw args>)"<thread id>"` per line.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace mev::data {

enum class OsVariant : std::uint8_t { kWin7 = 0, kWinXp, kWin8, kWin10 };

std::string to_string(OsVariant os);
OsVariant os_variant_from_string(std::string_view s);

/// One hooked API call.
struct ApiCall {
  std::string api;          // API name as logged (mixed case allowed)
  std::uint64_t address = 0;  // return address
  std::string args;         // raw argument text, no surrounding parens
  std::uint32_t thread_id = 0;

  bool operator==(const ApiCall&) const = default;
};

/// A full log for one PE sample.
struct ApiLog {
  std::string sample_name;  // e.g. "sample_000123.exe"
  OsVariant os = OsVariant::kWin7;
  std::vector<ApiCall> calls;

  bool operator==(const ApiLog&) const = default;

  std::size_t size() const noexcept { return calls.size(); }

  /// Number of calls whose API name equals `api_name` (case-insensitive).
  std::size_t count_api(std::string_view api_name) const;

  /// Appends `repeat` calls to `api_name` at the end of the log — the
  /// programmatic equivalent of the paper's live grey-box test, where a
  /// researcher adds one API call to the malware source multiple times.
  void append_calls(std::string_view api_name, std::size_t repeat,
                    std::uint32_t thread_id = 0);
};

/// Serializes one call in the Table II line format.
std::string format_api_call(const ApiCall& call);

/// Parses a Table II-format line. Throws std::runtime_error on malformed
/// input.
ApiCall parse_api_call(std::string_view line);

/// Writes a whole log (one call per line); header lines start with '#'.
void write_log(const ApiLog& log, std::ostream& os);
std::string log_to_string(const ApiLog& log);

/// Reads a log written by write_log. Unknown '#' headers are ignored.
ApiLog read_log(std::istream& is);
ApiLog log_from_string(std::string_view text);

}  // namespace mev::data
