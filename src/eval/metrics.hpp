// Evaluation metrics (§II-D): confusion matrix, TPR/TNR/FPR/FNR,
// detection rate (security-evaluation curves) and transfer rate.
//
// Positive class = malware (label 1), matching the paper.
#pragma once

#include <string>
#include <vector>

namespace mev::eval {

struct ConfusionMatrix {
  std::size_t true_positive = 0;   // malware classified malware
  std::size_t true_negative = 0;   // clean classified clean
  std::size_t false_positive = 0;  // clean classified malware
  std::size_t false_negative = 0;  // malware classified clean

  std::size_t total() const noexcept {
    return true_positive + true_negative + false_positive + false_negative;
  }
  std::size_t positives() const noexcept {
    return true_positive + false_negative;
  }
  std::size_t negatives() const noexcept {
    return true_negative + false_positive;
  }

  /// NaN when the corresponding class is absent, mirroring the paper's
  /// Table VI "nan" cells.
  double tpr() const noexcept;
  double tnr() const noexcept;
  double fpr() const noexcept;
  double fnr() const noexcept;
  double accuracy() const noexcept;
  double precision() const noexcept;
  double f1() const noexcept;

  std::string to_string() const;
};

/// Builds a confusion matrix from labels and predictions (0 clean,
/// 1 malware). Sizes must match.
ConfusionMatrix confusion(const std::vector<int>& labels,
                          const std::vector<int>& predictions);

/// Fraction of samples predicted as malware — the detection rate of a
/// malware-only (or adversarial-example) set.
double detection_rate(const std::vector<int>& predictions);

/// 1 - detection rate: the fraction of adversarial examples that evade.
double evasion_rate(const std::vector<int>& predictions);

/// One point of a security-evaluation curve.
struct CurvePoint {
  double attack_strength = 0.0;  // the swept parameter (gamma or theta)
  double detection_rate = 0.0;
  double mean_l2 = 0.0;          // mean L2 perturbation at this strength
  double mean_features = 0.0;    // mean number of perturbed features
};

/// A labelled series of curve points (one per swept parameter value).
struct SecurityCurve {
  std::string name;            // e.g. "target model" / "substitute model"
  std::string parameter;       // "gamma" or "theta"
  std::vector<CurvePoint> points;
};

}  // namespace mev::eval
