file(REMOVE_RECURSE
  "libmev_core.a"
)
