// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic components of the library (synthetic data generation, weight
// initialization, mini-batch shuffling, random-addition attacks) draw from
// mev::math::Rng so that every experiment is exactly reproducible from a
// 64-bit seed. The generator is xoshiro256**, seeded via SplitMix64.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace mev::math {

/// xoshiro256** generator with distribution helpers.
///
/// Satisfies the UniformRandomBitGenerator requirements, so it can also be
/// used with <random> facilities, but the member distributions below are
/// preferred: they are guaranteed stable across standard-library versions,
/// which <random> distributions are not.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Marsaglia polar method (cached pair).
  double normal() noexcept;
  /// Normal with the given mean and standard deviation (stddev >= 0).
  double normal(double mean, double stddev) noexcept;

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Poisson draw. Uses Knuth multiplication for small lambda and a
  /// normal approximation with continuity correction for lambda > 30.
  std::uint32_t poisson(double lambda) noexcept;

  /// Gamma(shape k > 0, scale theta > 0) via Marsaglia-Tsang.
  double gamma(double shape, double scale) noexcept;

  /// Exponential with the given rate (> 0).
  double exponential(double rate) noexcept;

  /// Draws an index in [0, weights.size()) proportional to weights.
  /// Non-positive weights are treated as zero. Requires a positive total.
  std::size_t categorical(const std::vector<double>& weights) noexcept;

  /// Fisher-Yates shuffle of an index span.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform_index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A new generator whose state is derived from this one; use to give each
  /// subsystem an independent stream without correlated draws.
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace mev::math
