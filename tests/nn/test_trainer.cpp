#include "nn/trainer.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace mev::nn {
namespace {

/// Linearly separable 2-D blobs.
LabeledData blobs(std::size_t n, std::uint64_t seed) {
  math::Rng rng(seed);
  LabeledData data;
  data.x = math::Matrix(n, 2);
  data.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    const double cx = label == 0 ? -1.0 : 1.0;
    data.x(i, 0) = static_cast<float>(cx + 0.3 * rng.normal());
    data.x(i, 1) = static_cast<float>(cx + 0.3 * rng.normal());
    data.labels[i] = label;
  }
  return data;
}

Network blob_net(std::uint64_t seed = 7) {
  MlpConfig cfg;
  cfg.dims = {2, 16, 2};
  cfg.seed = seed;
  return make_mlp(cfg);
}

TEST(Trainer, LossDecreases) {
  Network net = blob_net();
  const LabeledData data = blobs(200, 1);
  TrainConfig cfg;
  cfg.epochs = 15;
  cfg.batch_size = 32;
  cfg.learning_rate = 0.01f;
  const TrainHistory history = train(net, data, cfg);
  ASSERT_EQ(history.epochs.size(), 15u);
  EXPECT_LT(history.epochs.back().train_loss,
            history.epochs.front().train_loss);
}

TEST(Trainer, LearnsSeparableData) {
  Network net = blob_net();
  const LabeledData data = blobs(400, 2);
  TrainConfig cfg;
  cfg.epochs = 25;
  cfg.batch_size = 32;
  cfg.learning_rate = 0.01f;
  train(net, data, cfg);
  EXPECT_GT(accuracy(net, data.x, data.labels), 0.95);
}

TEST(Trainer, SgdAlsoLearns) {
  Network net = blob_net();
  const LabeledData data = blobs(400, 3);
  TrainConfig cfg;
  cfg.epochs = 30;
  cfg.optimizer = OptimizerKind::kSgd;
  cfg.learning_rate = 0.05f;
  train(net, data, cfg);
  EXPECT_GT(accuracy(net, data.x, data.labels), 0.9);
}

TEST(Trainer, ValidationAccuracyTracked) {
  Network net = blob_net();
  const LabeledData data = blobs(200, 4);
  const LabeledData val = blobs(100, 5);
  TrainConfig cfg;
  cfg.epochs = 10;
  cfg.batch_size = 32;
  cfg.learning_rate = 0.01f;
  const TrainHistory history = train(net, data, cfg, &val);
  EXPECT_GT(history.best_val_accuracy, 0.8);
  EXPECT_GE(history.epochs.back().val_accuracy, 0.0);
}

TEST(Trainer, EarlyStoppingStopsEarly) {
  Network net = blob_net();
  const LabeledData data = blobs(300, 6);
  const LabeledData val = blobs(100, 7);
  TrainConfig cfg;
  cfg.epochs = 200;
  cfg.batch_size = 32;
  cfg.learning_rate = 0.01f;
  cfg.early_stopping_patience = 3;
  const TrainHistory history = train(net, data, cfg, &val);
  EXPECT_TRUE(history.early_stopped);
  EXPECT_LT(history.epochs.size(), 200u);
}

TEST(Trainer, OnEpochCallbackFires) {
  Network net = blob_net();
  const LabeledData data = blobs(64, 8);
  TrainConfig cfg;
  cfg.epochs = 3;
  std::size_t calls = 0;
  cfg.on_epoch = [&](std::size_t, double, double) { ++calls; };
  train(net, data, cfg);
  EXPECT_EQ(calls, 3u);
}

TEST(Trainer, DeterministicGivenSeeds) {
  const LabeledData data = blobs(128, 9);
  TrainConfig cfg;
  cfg.epochs = 5;
  Network a = blob_net(42), b = blob_net(42);
  const auto ha = train(a, data, cfg);
  const auto hb = train(b, data, cfg);
  EXPECT_DOUBLE_EQ(ha.epochs.back().train_loss, hb.epochs.back().train_loss);
}

TEST(Trainer, SoftLabelTrainingLearns) {
  Network net = blob_net(13);
  const LabeledData data = blobs(300, 10);
  math::Matrix soft(data.x.rows(), 2);
  for (std::size_t i = 0; i < data.x.rows(); ++i) {
    soft(i, data.labels[i]) = 0.9f;
    soft(i, 1 - data.labels[i]) = 0.1f;
  }
  TrainConfig cfg;
  cfg.epochs = 25;
  cfg.batch_size = 32;
  cfg.learning_rate = 0.01f;
  train_soft(net, data.x, soft, cfg);
  EXPECT_GT(accuracy(net, data.x, data.labels), 0.9);
}

TEST(Trainer, InvalidInputsThrow) {
  Network net = blob_net();
  LabeledData data = blobs(10, 11);
  data.labels.pop_back();
  TrainConfig cfg;
  EXPECT_THROW(train(net, data, cfg), std::invalid_argument);

  LabeledData empty;
  EXPECT_THROW(train(net, empty, cfg), std::invalid_argument);

  LabeledData ok = blobs(10, 12);
  cfg.batch_size = 0;
  EXPECT_THROW(train(net, ok, cfg), std::invalid_argument);
}

TEST(Trainer, OutOfRangeLabelsThrow) {
  Network net = blob_net();
  LabeledData data = blobs(10, 14);
  data.labels[3] = 7;  // only classes 0 and 1 exist
  TrainConfig cfg;
  EXPECT_THROW(train(net, data, cfg), std::invalid_argument);
  data.labels[3] = -1;
  EXPECT_THROW(train(net, data, cfg), std::invalid_argument);
}

TEST(Trainer, DivergedTrainingThrows) {
  Network net = blob_net();
  LabeledData data = blobs(40, 15);
  // A non-finite activation poisons the loss; the trainer must fail loudly
  // instead of silently returning NaN weights.
  data.x(0, 0) = std::numeric_limits<float>::infinity();
  TrainConfig cfg;
  cfg.epochs = 5;
  EXPECT_THROW(train(net, data, cfg), std::runtime_error);
}

TEST(Trainer, AccuracyChecksSizes) {
  Network net = blob_net();
  const LabeledData data = blobs(10, 13);
  std::vector<int> wrong(5, 0);
  EXPECT_THROW(accuracy(net, data.x, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace mev::nn
