// Request-scoped tracing through the HTTP frontend: W3C traceparent
// ingest (valid = byte-for-byte echo, malformed = served with a fresh
// trace — the no-400 contract), X-Trace-Id + Server-Timing stamping on
// every score-path response including errors, the pinned FakeClock
// stage-attribution test (stages sum EXACTLY to the end-to-end latency),
// and the /requestz cross-thread span tree. Scoring mechanics live in
// test_frontend.cpp; this file owns the correlation surface.
#include "net/frontend.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/api_vocab.hpp"
#include "features/transform.hpp"
#include "math/rng.hpp"
#include "net/wire.hpp"
#include "obs/admin_server.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "runtime/clock.hpp"

namespace mev::net {
namespace {

constexpr std::size_t kDim = data::kNumApiFeatures;

constexpr const char* kCallerTraceparent =
    "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";
constexpr const char* kCallerTraceId = "0af7651916cd43dd8448eb211c80319c";

// A FakeClock the test may advance while frontend socket workers are
// live: runtime::FakeClock is deliberately plain (single-threaded
// determinism), but here the main thread calls advance() concurrently
// with clock reads on the worker threads, so time is one atomic.
class SharedFakeClock final : public runtime::Clock {
 public:
  explicit SharedFakeClock(std::uint64_t start_ms) : now_ms_(start_ms) {}
  std::uint64_t now_ms() override { return now_ms_.load(); }
  void sleep_ms(std::uint64_t ms) override { advance(ms); }
  void advance(std::uint64_t ms) { now_ms_.fetch_add(ms); }

 private:
  std::atomic<std::uint64_t> now_ms_;
};

math::Matrix random_counts(std::size_t rows, std::uint64_t seed) {
  math::Rng rng(seed);
  math::Matrix m(rows, kDim);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.poisson(3.0));
  return m;
}

features::FeaturePipeline make_pipeline(std::uint64_t seed) {
  auto transform = std::make_unique<features::CountTransform>();
  transform->fit(random_counts(64, seed));
  return features::FeaturePipeline(data::ApiVocab::instance(),
                                   std::move(transform));
}

std::shared_ptr<nn::Network> make_network(std::uint64_t seed) {
  nn::MlpConfig cfg;
  cfg.dims = {kDim, 16, 2};
  cfg.seed = seed;
  return std::make_shared<nn::Network>(nn::make_mlp(cfg));
}

struct Fixture {
  features::FeaturePipeline pipeline = make_pipeline(7);
  std::shared_ptr<nn::Network> network = make_network(11);

  serve::ScoringService make_service(serve::ServiceConfig config) {
    return serve::ScoringService(pipeline, network, config);
  }
};

using Headers = std::vector<std::pair<std::string, std::string>>;

std::string post_score(const std::string& body, const Headers& extra = {}) {
  std::string req =
      "POST /v1/score HTTP/1.1\r\nContent-Type: application/x-mev-rows"
      "\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\n";
  for (const auto& [name, value] : extra) req += name + ": " + value + "\r\n";
  req += "\r\n";
  req += body;
  return req;
}

/// Same minimal blocking client as test_frontend.cpp.
class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  void send_raw(const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return;
      sent += static_cast<std::size_t>(n);
    }
  }

  std::string read_response() {
    for (;;) {
      const std::size_t header_end = buffer_.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        const std::string headers = buffer_.substr(0, header_end + 4);
        std::size_t body_len = 0;
        const std::size_t cl = headers.find("Content-Length: ");
        if (cl != std::string::npos)
          body_len = static_cast<std::size_t>(
              std::stoul(headers.substr(cl + 16)));
        if (buffer_.size() >= header_end + 4 + body_len) {
          const std::string response =
              buffer_.substr(0, header_end + 4 + body_len);
          buffer_.erase(0, header_end + 4 + body_len);
          return response;
        }
      }
      char chunk[8192];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

int status_of(const std::string& response) {
  if (response.size() < 12 || response.compare(0, 9, "HTTP/1.1 ") != 0)
    return -1;
  return std::stoi(response.substr(9, 3));
}

/// Value of `name` in the response header block; "" when absent.
std::string header_of(const std::string& response, const std::string& name) {
  const std::string needle = "\r\n" + name + ": ";
  const std::size_t at = response.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t start = at + needle.size();
  return response.substr(start, response.find("\r\n", start) - start);
}

/// "dur=12.345" fragments of a Server-Timing value, as microseconds.
std::uint64_t timing_us(const std::string& timing, const std::string& stage) {
  const std::string needle = stage + ";dur=";
  const std::size_t at = timing.find(needle);
  if (at == std::string::npos) return ~std::uint64_t{0};
  const std::size_t start = at + needle.size();
  const std::size_t dot = timing.find('.', start);
  const std::uint64_t ms = std::stoull(timing.substr(start, dot - start));
  const std::uint64_t frac = std::stoull(timing.substr(dot + 1, 3));
  return ms * 1000 + frac;
}

FrontendConfig base_config() {
  FrontendConfig config;
  config.port = 0;
  config.worker_threads = 2;
  config.io_timeout_ms = 3000;
  return config;
}

TEST(FrontendTracing, EchoesTheCallersTraceIdByteForByte) {
  Fixture f;
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  auto service = f.make_service(cfg);
  ScoringFrontend frontend(service, base_config());
  ASSERT_TRUE(frontend.start());

  Client client(frontend.port());
  ASSERT_TRUE(client.ok());
  client.send_raw(post_score(encode_binary_rows(random_counts(2, 42)),
                             {{"traceparent", kCallerTraceparent}}));
  const std::string response = client.read_response();
  EXPECT_EQ(status_of(response), 200);
  EXPECT_EQ(header_of(response, "X-Trace-Id"), kCallerTraceId);
  const std::string timing = header_of(response, "Server-Timing");
  ASSERT_FALSE(timing.empty());
  // The full stage taxonomy is present on every score response.
  for (const char* stage :
       {"parse", "admission", "queue", "batch", "scan", "serialize",
        "total"})
    EXPECT_NE(timing.find(std::string(stage) + ";dur="), std::string::npos)
        << timing;
}

TEST(FrontendTracing, MalformedTraceparentIsServedWithAFreshTrace) {
  Fixture f;
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  auto service = f.make_service(cfg);
  ScoringFrontend frontend(service, base_config());
  ASSERT_TRUE(frontend.start());

  // The malformed matrix over real HTTP: bad version, wrong length,
  // non-hex, all-zero trace id. Every one is SERVED (200, never 400)
  // with a fresh trace — the caller's garbage id is not echoed.
  const char* kMalformed[] = {
      "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
      "00-0af7651916cd43dd8448eb211c8031-b7ad6b7169203331-01",
      "00-0af7651916cd43dg8448eb211c80319c-b7ad6b7169203331-01",
      "00-00000000000000000000000000000000-b7ad6b7169203331-01",
      "not a traceparent at all",
  };
  Client client(frontend.port());
  ASSERT_TRUE(client.ok());
  std::string previous_id;
  for (const char* header : kMalformed) {
    client.send_raw(post_score(encode_binary_rows(random_counts(1, 7)),
                               {{"traceparent", header}}));
    const std::string response = client.read_response();
    EXPECT_EQ(status_of(response), 200) << header;
    const std::string trace_id = header_of(response, "X-Trace-Id");
    ASSERT_EQ(trace_id.size(), 32u) << header;
    EXPECT_NE(trace_id, kCallerTraceId) << header;
    EXPECT_NE(trace_id, "0af7651916cd43dd8448eb211c80319c") << header;
    EXPECT_NE(trace_id, previous_id) << header;  // fresh per request
    previous_id = trace_id;
  }
}

TEST(FrontendTracing, RequestsWithoutTraceparentGetAFreshTrace) {
  Fixture f;
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  auto service = f.make_service(cfg);
  ScoringFrontend frontend(service, base_config());
  ASSERT_TRUE(frontend.start());

  Client client(frontend.port());
  ASSERT_TRUE(client.ok());
  client.send_raw(post_score(encode_binary_rows(random_counts(1, 9))));
  const std::string response = client.read_response();
  EXPECT_EQ(status_of(response), 200);
  const std::string trace_id = header_of(response, "X-Trace-Id");
  EXPECT_EQ(trace_id.size(), 32u);
  EXPECT_NE(trace_id, std::string(32, '0'));
}

TEST(FrontendTracing, ErrorResponsesCarryCorrelationHeadersToo) {
  Fixture f;
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  auto service = f.make_service(cfg);
  FrontendConfig config = base_config();
  config.api_keys = {ApiKey{"secret", "tester", 1e6, 1e6}};
  ScoringFrontend frontend(service, config);
  ASSERT_TRUE(frontend.start());

  Client client(frontend.port());
  ASSERT_TRUE(client.ok());
  // 401 (missing key) still answers with the caller's trace id and a
  // stage breakdown — failed requests are the ones worth correlating.
  client.send_raw(post_score(encode_binary_rows(random_counts(1, 11)),
                             {{"traceparent", kCallerTraceparent}}));
  const std::string response = client.read_response();
  EXPECT_EQ(status_of(response), 401);
  EXPECT_EQ(header_of(response, "X-Trace-Id"), kCallerTraceId);
  EXPECT_NE(header_of(response, "Server-Timing").find("total;dur="),
            std::string::npos);
}

// The PINNED attribution test: under a shared FakeClock the stage
// breakdown is exact — 3 ms spent queued (the only clock advance) and
// the six stages sum to the end-to-end duration TO THE MICROSECOND.
TEST(FrontendTracing, StageBreakdownSumsExactlyToEndToEndUnderFakeClock) {
  Fixture f;
  SharedFakeClock clock(5);
  serve::ServiceConfig cfg;
  cfg.workers = 0;  // manual pump: the test owns every boundary
  cfg.max_batch_rows = 8;
  cfg.max_queue_delay_ms = 0;
  cfg.clock = &clock;
  auto service = f.make_service(cfg);
  FrontendConfig config = base_config();  // null clock: shares the service's
  ScoringFrontend frontend(service, config);
  ASSERT_TRUE(frontend.start());

  Client client(frontend.port());
  ASSERT_TRUE(client.ok());
  client.send_raw(post_score(encode_binary_rows(random_counts(2, 21)),
                             {{"traceparent", kCallerTraceparent}}));

  // Wait (in real time) for the frontend worker to parse + submit; all
  // FakeClock reads up to that point saw t=5 ms.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service.stats().accepted_requests < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "request never reached the service";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  clock.advance(3);  // the request spends exactly 3 ms "queued"
  service.pump(/*force=*/true);

  const std::string response = client.read_response();
  ASSERT_EQ(status_of(response), 200);
  const std::string timing = header_of(response, "Server-Timing");
  ASSERT_FALSE(timing.empty());
  EXPECT_EQ(timing_us(timing, "parse"), 0u) << timing;
  EXPECT_EQ(timing_us(timing, "admission"), 0u);
  EXPECT_EQ(timing_us(timing, "queue"), 3000u) << timing;
  EXPECT_EQ(timing_us(timing, "batch"), 0u);
  EXPECT_EQ(timing_us(timing, "scan"), 0u);
  EXPECT_EQ(timing_us(timing, "serialize"), 0u);
  EXPECT_EQ(timing_us(timing, "total"), 3000u);
  const std::uint64_t stage_sum =
      timing_us(timing, "parse") + timing_us(timing, "admission") +
      timing_us(timing, "queue") + timing_us(timing, "batch") +
      timing_us(timing, "scan") + timing_us(timing, "serialize");
  EXPECT_EQ(stage_sum, timing_us(timing, "total"));

  // The flight recorder retained the same partition.
  const auto records = frontend.flight_recorder().snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].duration_us, 3000u);
  EXPECT_EQ(records[0].stage_us[2], 3000u);  // queue
  EXPECT_EQ(records[0].rows, 2u);
  EXPECT_EQ(records[0].http_status, 200);
  std::uint64_t record_sum = 0;
  for (const std::uint64_t stage : records[0].stage_us) record_sum += stage;
  EXPECT_EQ(record_sum, records[0].duration_us);
}

#if MEV_OBS_ENABLED

TEST(FrontendTracing, RequestzServesTheCrossThreadSpanTree) {
  Fixture f;
  runtime::FakeClock clock;
  obs::Tracer tracer(
      obs::TracerConfig{.ring_capacity = 256, .clock = &clock});
  serve::ServiceConfig cfg;
  cfg.workers = 2;  // real worker threads: the spans cross threads
  cfg.max_batch_rows = 8;
  cfg.max_queue_delay_ms = 0;
  cfg.clock = &clock;
  cfg.tracer = &tracer;
  auto service = f.make_service(cfg);
  FrontendConfig config = base_config();
  config.tracer = &tracer;
  ScoringFrontend frontend(service, config);
  ASSERT_TRUE(frontend.start());

  Client client(frontend.port());
  ASSERT_TRUE(client.ok());
  client.send_raw(post_score(encode_binary_rows(random_counts(2, 33)),
                             {{"traceparent", kCallerTraceparent}}));
  const std::string response = client.read_response();
  ASSERT_EQ(status_of(response), 200);
  service.shutdown();

  // One trace id across BOTH sides: the net spans (frontend worker
  // thread) and the serve spans (scoring worker thread) all landed under
  // the caller's trace, reassemblable into one tree.
  const std::uint64_t trace_lo = 0x8448eb211c80319cULL;
  bool net_request = false, net_parse = false, serve_queue = false,
       serve_scan = false;
  std::uint64_t root_span = 0;
  for (const obs::TraceEvent& e : tracer.recent(256)) {
    if (e.trace_id != trace_lo) continue;
    const std::string_view name(e.name);
    if (name == "mev.net.request") {
      net_request = true;
      root_span = e.span_id;
      // Parented on the CALLER's span from the traceparent header.
      EXPECT_EQ(e.parent_span_id, 0xb7ad6b7169203331ULL);
    } else if (name == "mev.net.parse") {
      net_parse = true;
    } else if (name == "mev.serve.queue") {
      serve_queue = true;
    } else if (name == "mev.serve.scan") {
      serve_scan = true;
    }
  }
  EXPECT_TRUE(net_request);
  EXPECT_TRUE(net_parse);
  EXPECT_TRUE(serve_queue);
  EXPECT_TRUE(serve_scan);
  // Children all hang off the net root span.
  for (const obs::TraceEvent& e : tracer.recent(256)) {
    if (e.trace_id != trace_lo ||
        std::string_view(e.name) == "mev.net.request")
      continue;
    EXPECT_EQ(e.parent_span_id, root_span) << e.name;
  }

  // /requestz exposes the same tree from the flight recorder.
  obs::AdminServerConfig admin_cfg;
  admin_cfg.tracer = &tracer;
  obs::AdminServer admin(admin_cfg);
  admin.set_flight_recorder(&frontend.flight_recorder());
  mev::obs::http::Request get;
  get.method = "GET";
  get.target = "/requestz?trace_id=" + std::string(kCallerTraceId);
  get.version = "HTTP/1.1";
  const std::string requestz = admin.handle(get);
  EXPECT_NE(requestz.find("\"trace_id\":\"" + std::string(kCallerTraceId) +
                          '"'),
            std::string::npos)
      << requestz;
  EXPECT_NE(requestz.find("\"name\":\"mev.net.request\""), std::string::npos);
  for (const char* stage :
       {"parse", "admission", "queue", "batch", "scan", "serialize"})
    EXPECT_NE(requestz.find("\"name\":\"" + std::string(stage) + '"'),
              std::string::npos)
        << stage;
  admin.set_flight_recorder(nullptr);
}

#endif  // MEV_OBS_ENABLED

}  // namespace
}  // namespace mev::net
