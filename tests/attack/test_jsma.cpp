#include "attack/jsma.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "data/dataset.hpp"
#include "nn/trainer.hpp"

namespace mev::attack {
namespace {

/// A small detector trained on synthetic 10-D data where high values of
/// features 0..4 indicate malware and high 5..9 indicate clean.
struct Fixture {
  nn::Network net;
  math::Matrix malware;  // detected malware rows

  Fixture() {
    nn::MlpConfig cfg;
    cfg.dims = {10, 24, 2};
    cfg.seed = 11;
    net = nn::make_mlp(cfg);

    math::Rng rng(12);
    nn::LabeledData train;
    train.x = math::Matrix(400, 10);
    train.labels.resize(400);
    for (std::size_t i = 0; i < 400; ++i) {
      const int label = static_cast<int>(i % 2);
      for (std::size_t j = 0; j < 10; ++j) {
        const bool hot = label == data::kMalwareLabel ? j < 5 : j >= 5;
        train.x(i, j) = static_cast<float>(
            std::clamp(hot ? 0.55 + 0.2 * rng.normal()
                           : 0.10 + 0.08 * rng.normal(),
                       0.0, 1.0));
      }
      train.labels[i] = label;
    }
    nn::TrainConfig tc;
    tc.epochs = 40;
    nn::train(net, train, tc);

    // Collect detected malware rows.
    malware = math::Matrix(0, 10);
    for (std::size_t i = 0; i < 400; ++i) {
      if (train.labels[i] != data::kMalwareLabel) continue;
      math::Matrix row(1, 10);
      row.set_row(0, train.x.row(i));
      if (net.predict(row)[0] == data::kMalwareLabel) {
        malware.append_row(train.x.row(i));
        if (malware.rows() >= 40) break;
      }
    }
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(Jsma, ConfigValidation) {
  JsmaConfig bad;
  bad.theta = -0.1f;
  EXPECT_THROW(Jsma{bad}, std::invalid_argument);
  JsmaConfig bad2;
  bad2.gamma = 1.5f;
  EXPECT_THROW(Jsma{bad2}, std::invalid_argument);
}

TEST(Jsma, FeatureBudgetMatchesPaper) {
  JsmaConfig cfg;
  cfg.gamma = 0.005f;
  EXPECT_EQ(Jsma(cfg).feature_budget(491), 2u);  // "adding 2 features"
  cfg.gamma = 0.025f;
  EXPECT_EQ(Jsma(cfg).feature_budget(491), 12u);  // "adding 12 features"
  cfg.gamma = 0.0f;
  EXPECT_EQ(Jsma(cfg).feature_budget(491), 0u);
}

TEST(Jsma, SaliencyMapZeroesInadmissibleFeatures) {
  // Two classes, two features: feature 0 helps the target, feature 1 hurts.
  math::Matrix g0{{0.5f, -0.5f}};
  math::Matrix g1{{-0.5f, 0.5f}};
  const std::vector<math::Matrix> grads{g0, g1};
  const math::Matrix s = Jsma::saliency_map(grads, 0);
  EXPECT_GT(s(0, 0), 0.0f);
  EXPECT_EQ(s(0, 1), 0.0f);
}

TEST(Jsma, SaliencyMapTargetOutOfRangeThrows) {
  math::Matrix g(1, 2);
  const std::vector<math::Matrix> grads{g, g};
  EXPECT_THROW(Jsma::saliency_map(grads, 5), std::invalid_argument);
  EXPECT_THROW(Jsma::saliency_map({}, 0), std::invalid_argument);
}

TEST(Jsma, AddOnlyInvariant) {
  // Property: adversarial features never decrease and never exceed 1.
  auto& f = fixture();
  JsmaConfig cfg;
  cfg.theta = 0.3f;
  cfg.gamma = 0.3f;
  const AttackResult r = Jsma(cfg).craft(f.net, f.malware);
  for (std::size_t i = 0; i < f.malware.rows(); ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      EXPECT_GE(r.adversarial(i, j), f.malware(i, j) - 1e-6);
      EXPECT_LE(r.adversarial(i, j), 1.0f + 1e-6);
    }
  }
}

TEST(Jsma, RespectsFeatureBudget) {
  auto& f = fixture();
  JsmaConfig cfg;
  cfg.theta = 0.2f;
  cfg.gamma = 0.2f;  // 2 features in 10
  cfg.early_stop = false;
  const AttackResult r = Jsma(cfg).craft(f.net, f.malware);
  for (std::size_t fc : r.features_changed) EXPECT_LE(fc, 2u);
}

TEST(Jsma, StrongAttackEvades) {
  auto& f = fixture();
  JsmaConfig cfg;
  cfg.theta = 1.0f;
  cfg.gamma = 0.5f;
  const AttackResult r = Jsma(cfg).craft(f.net, f.malware);
  EXPECT_GT(r.success_rate(), 0.8);
}

TEST(Jsma, StrongerAttackEvadesAtLeastAsMuch) {
  auto& f = fixture();
  JsmaConfig weak;
  weak.theta = 0.1f;
  weak.gamma = 0.1f;
  JsmaConfig strong = weak;
  strong.theta = 1.0f;
  strong.gamma = 0.5f;
  EXPECT_GE(Jsma(strong).craft(f.net, f.malware).success_rate(),
            Jsma(weak).craft(f.net, f.malware).success_rate());
}

TEST(Jsma, ZeroStrengthIsNoop) {
  auto& f = fixture();
  JsmaConfig cfg;
  cfg.theta = 0.0f;
  const AttackResult r = Jsma(cfg).craft(f.net, f.malware);
  EXPECT_EQ(r.adversarial, f.malware);
  EXPECT_EQ(r.success_rate(), 0.0);  // all rows were detected malware
}

TEST(Jsma, ZeroGammaIsNoop) {
  auto& f = fixture();
  JsmaConfig cfg;
  cfg.gamma = 0.0f;
  const AttackResult r = Jsma(cfg).craft(f.net, f.malware);
  EXPECT_EQ(r.adversarial, f.malware);
}

TEST(Jsma, EmptyBatch) {
  auto& f = fixture();
  const AttackResult r = Jsma(JsmaConfig{}).craft(f.net, math::Matrix(0, 10));
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.success_rate(), 0.0);
}

TEST(Jsma, EarlyStopUsesFewerFeatures) {
  auto& f = fixture();
  JsmaConfig eager;
  eager.theta = 1.0f;
  eager.gamma = 0.5f;
  eager.early_stop = true;
  JsmaConfig full = eager;
  full.early_stop = false;
  const auto r_eager = Jsma(eager).craft(f.net, f.malware);
  const auto r_full = Jsma(full).craft(f.net, f.malware);
  EXPECT_LE(r_eager.mean_features_changed(),
            r_full.mean_features_changed() + 1e-9);
}

TEST(Jsma, AllowRepeatConcentratesPerturbation) {
  auto& f = fixture();
  JsmaConfig repeat;
  repeat.theta = 0.05f;
  repeat.gamma = 0.5f;
  repeat.allow_repeat = true;
  repeat.early_stop = false;
  const auto r = Jsma(repeat).craft(f.net, f.malware);
  // With repetition allowed, distinct features changed can be fewer than
  // the budget even when every iteration fires.
  EXPECT_LE(r.mean_features_changed(), 5.0 + 1e-9);
}

TEST(Jsma, L2MatchesPerturbation) {
  auto& f = fixture();
  JsmaConfig cfg;
  cfg.theta = 1.0f;
  cfg.gamma = 0.1f;  // 1 feature
  cfg.early_stop = false;
  const auto r = Jsma(cfg).craft(f.net, f.malware);
  for (std::size_t i = 0; i < r.size(); ++i) {
    double expect = 0;
    for (std::size_t j = 0; j < 10; ++j) {
      const double d = r.adversarial(i, j) - f.malware(i, j);
      expect += d * d;
    }
    EXPECT_NEAR(r.l2_perturbation[i], std::sqrt(expect), 1e-5);
  }
}

class JsmaGrid
    : public ::testing::TestWithParam<std::pair<float, float>> {};

TEST_P(JsmaGrid, InvariantsHoldAcrossGrid) {
  const auto [theta, gamma] = GetParam();
  auto& f = fixture();
  JsmaConfig cfg;
  cfg.theta = theta;
  cfg.gamma = gamma;
  cfg.early_stop = false;
  const AttackResult r = Jsma(cfg).craft(f.net, f.malware);
  const std::size_t budget = Jsma(cfg).feature_budget(10);
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_LE(r.features_changed[i], budget);
    EXPECT_GE(r.l2_perturbation[i], 0.0);
    for (std::size_t j = 0; j < 10; ++j)
      EXPECT_GE(r.adversarial(i, j), f.malware(i, j) - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThetaGammaGrid, JsmaGrid,
    ::testing::Values(std::pair{0.05f, 0.1f}, std::pair{0.1f, 0.2f},
                      std::pair{0.5f, 0.3f}, std::pair{1.0f, 0.1f},
                      std::pair{0.0125f, 0.5f}, std::pair{1.0f, 1.0f}));

}  // namespace
}  // namespace mev::attack
