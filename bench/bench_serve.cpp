// Serving throughput/latency bench for serve::ScoringService (DESIGN.md §8).
//
// Three phases, all on the Table-IV 491-feature detector trained by
// bench_common's environment:
//
//   1. Sequential baseline — one thread, one InferenceSession, one
//      scan_counts() call per request (the pre-service deployment model).
//      A batched variant (64-row scan_counts calls) isolates how much of
//      the service's win comes from micro-batch amortization alone.
//   2. Closed-loop sweep — worker count x batch window, 2 clients per
//      worker each keeping one request in flight; reports rows/s, speedup
//      vs the sequential baseline, mean batch size and latency digests.
//   3. Open-loop — seeded Poisson arrivals at multiples of the sequential
//      baseline rate with a per-request deadline, showing sustained
//      throughput, queue-delay percentiles and deadline/queue-full
//      rejections once the offered load exceeds capacity.
//   4. Overload — the 2x open-loop point rerun with the adaptive load
//      shedder (ServiceConfig::overload) enabled: the goodput ratio
//      (completed rows/s over the measured sequential capacity) and the
//      completed-work p99 are the overload-resilience contract gated by
//      bench/check_regression.py.
//
// Besides the console report, writes BENCH_serve.json (rows/s, latency
// percentiles, rejection counts per configuration) to the working
// directory for machine consumption.
//
//   ./bench_serve [tiny|fast|full]   (default fast)
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bench_meta.hpp"
#include "math/rng.hpp"
#include "nn/session.hpp"
#include "serve/scoring_service.hpp"

using namespace mev;

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

/// One single-row request; the workload cycles through real test counts.
std::vector<math::Matrix> make_requests(const bench::Environment& env,
                                        std::size_t n) {
  const math::Matrix& pool = env.bundle.test.counts;
  std::vector<math::Matrix> requests;
  requests.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    math::Matrix row(1, pool.cols());
    row.set_row(0, pool.row(i % pool.rows()));
    requests.push_back(std::move(row));
  }
  return requests;
}

struct SequentialResult {
  double per_row_rows_per_s = 0.0;   // one scan_counts call per request
  double batched_rows_per_s = 0.0;   // 64-row scan_counts calls
};

SequentialResult run_sequential(bench::Environment& env,
                                const std::vector<math::Matrix>& requests,
                                std::size_t batch_rows) {
  core::MalwareDetector& detector = env.detector();
  SequentialResult result;
  std::size_t malware = 0;  // consumed below so scans are not dead code

  {
    nn::InferenceSession session = detector.make_session(1);
    detector.scan_counts(session, requests.front());  // warm-up
    const auto start = SteadyClock::now();
    for (const math::Matrix& request : requests)
      for (const auto& verdict : detector.scan_counts(session, request))
        malware += verdict.is_malware() ? 1 : 0;
    result.per_row_rows_per_s =
        static_cast<double>(requests.size()) / seconds_since(start);
  }

  {
    // Same rows pre-packed into service-sized batches: the amortization
    // ceiling a perfect batcher could reach on one thread.
    math::Matrix block(batch_rows, requests.front().cols());
    nn::InferenceSession session = detector.make_session(batch_rows);
    detector.scan_counts(session, block);  // warm-up
    const auto start = SteadyClock::now();
    std::size_t done = 0;
    while (done < requests.size()) {
      const std::size_t take = std::min(batch_rows, requests.size() - done);
      for (std::size_t r = 0; r < take; ++r)
        block.set_row(r, requests[done + r].row(0));
      math::Matrix chunk = take == batch_rows ? block : block.slice_rows(0, take);
      for (const auto& verdict : detector.scan_counts(session, chunk))
        malware += verdict.is_malware() ? 1 : 0;
      done += take;
    }
    result.batched_rows_per_s =
        static_cast<double>(requests.size()) / seconds_since(start);
  }

  std::cerr << "# sequential: " << malware << " malware verdicts\n";
  return result;
}

struct ClosedLoopResult {
  std::size_t workers = 0;
  std::uint64_t window_ms = 0;
  double rows_per_s = 0.0;
  double speedup = 0.0;  // vs sequential per-row baseline
  double mean_batch_rows = 0.0;
  serve::LatencySummary e2e_us;
};

ClosedLoopResult run_closed_loop(bench::Environment& env,
                                 const std::vector<math::Matrix>& requests,
                                 std::size_t workers, std::uint64_t window_ms,
                                 double baseline_rows_per_s) {
  serve::ServiceConfig cfg;
  cfg.workers = workers;
  cfg.max_batch_rows = 64;
  cfg.max_queue_delay_ms = window_ms;
  cfg.max_queue_rows = 8192;
  serve::ScoringService service(env.detector().pipeline(),
                                env.detector().network_ptr(), cfg);
  service.score(requests.front());  // warm-up: sessions built, caches hot

  const std::size_t clients = std::max<std::size_t>(2 * workers, 4);
  std::atomic<std::size_t> next{0};
  const auto start = SteadyClock::now();
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&] {
      // Closed loop: each client keeps exactly one request outstanding.
      for (std::size_t i = next.fetch_add(1); i < requests.size();
           i = next.fetch_add(1)) {
        math::Matrix copy(1, requests[i].cols());
        copy.set_row(0, requests[i].row(0));
        service.submit(std::move(copy)).get();
      }
    });
  }
  for (auto& t : pool) t.join();
  const double elapsed = seconds_since(start);
  service.shutdown();

  const serve::ServiceStats stats = service.stats();
  ClosedLoopResult result;
  result.workers = workers;
  result.window_ms = window_ms;
  result.rows_per_s = static_cast<double>(requests.size()) / elapsed;
  result.speedup = result.rows_per_s / baseline_rows_per_s;
  result.mean_batch_rows = stats.batch_rows.mean();
  result.e2e_us = serve::summarize(stats.e2e_latency_us);
  return result;
}

struct OpenLoopResult {
  double rate_multiplier = 0.0;
  double offered_rows_per_s = 0.0;
  double achieved_rows_per_s = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_overloaded = 0;
  serve::LatencySummary queue_delay_us;
  serve::LatencySummary e2e_us;
};

OpenLoopResult run_open_loop(bench::Environment& env,
                             const std::vector<math::Matrix>& requests,
                             std::size_t workers, double rate_multiplier,
                             double baseline_rows_per_s, std::uint64_t seed,
                             bool shed = false) {
  serve::ServiceConfig cfg;
  cfg.workers = workers;
  cfg.max_batch_rows = 64;
  cfg.max_queue_delay_ms = 2;
  cfg.max_queue_rows = 1024;  // tight enough to exercise queue-full at 2x
  if (shed) {
    // The overload phase: the CoDel controller turns sustained queue
    // delay into deterministic admission shedding instead of letting
    // every request burn its deadline in the queue.
    cfg.overload.enabled = true;
    // Tight thresholds: with sub-10us rows any standing queue is visible
    // as >1ms sojourn, and a 25ms interval reacts within the burst.
    cfg.overload.target_delay_ms = 1;
    cfg.overload.interval_ms = 25;
  }
  serve::ScoringService service(env.detector().pipeline(),
                                env.detector().network_ptr(), cfg);
  service.score(requests.front());  // warm-up

  // Seeded Poisson process: exponential inter-arrival gaps at the target
  // rate, scheduled against absolute deadlines so dispatch jitter does not
  // accumulate into rate drift.
  const double rate = rate_multiplier * baseline_rows_per_s;
  math::Rng rng(seed);
  std::vector<double> arrival_s(requests.size());
  double t = 0.0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    t += rng.exponential(rate);
    arrival_s[i] = t;
  }

  serve::SubmitOptions options;
  options.deadline_ms = 100;  // drop hopeless work instead of queueing it
  std::vector<serve::ScoreFuture> futures;
  futures.reserve(requests.size());
  const auto start = SteadyClock::now();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto due =
        start + std::chrono::duration_cast<SteadyClock::duration>(
                    std::chrono::duration<double>(arrival_s[i]));
    if (due > SteadyClock::now()) std::this_thread::sleep_until(due);
    math::Matrix copy(1, requests[i].cols());
    copy.set_row(0, requests[i].row(0));
    futures.push_back(service.submit(std::move(copy), options));
  }
  OpenLoopResult result;
  for (auto& future : futures)
    if (future.get().ok()) ++result.completed;
  const double elapsed = seconds_since(start);
  service.shutdown();

  const serve::ServiceStats stats = service.stats();
  result.rate_multiplier = rate_multiplier;
  result.offered_rows_per_s = rate;
  result.achieved_rows_per_s = static_cast<double>(result.completed) / elapsed;
  result.rejected_deadline = stats.rejected_deadline;
  result.rejected_queue_full = stats.rejected_queue_full;
  result.rejected_overloaded = stats.rejected_overloaded;
  result.queue_delay_us = serve::summarize(stats.queue_delay_us);
  result.e2e_us = serve::summarize(stats.e2e_latency_us);
  return result;
}

void print_latency(std::ostream& os, const char* name,
                   const serve::LatencySummary& s) {
  os << name << " p50=" << s.p50 << "us p95=" << s.p95 << "us p99=" << s.p99
     << "us max=" << s.max << "us";
}

void json_latency(std::ostream& os, const char* key,
                  const serve::LatencySummary& s) {
  os << "\"" << key << "\": {\"mean\": " << s.mean << ", \"p50\": " << s.p50
     << ", \"p95\": " << s.p95 << ", \"p99\": " << s.p99
     << ", \"max\": " << s.max << "}";
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::parse_scale(argc, argv, "fast");
  bench::Environment env = bench::make_environment(config);

  std::size_t n_requests = 4096;
  if (config.scale == core::ExperimentScale::kTiny) n_requests = 768;
  if (config.scale == core::ExperimentScale::kFull) n_requests = 16384;
  const std::vector<math::Matrix> requests = make_requests(env, n_requests);
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::cerr << "# requests=" << n_requests
            << " feature_dim=" << requests.front().cols()
            << " hardware_concurrency=" << cores << "\n";

  std::cerr << "# sequential baseline...\n";
  const SequentialResult seq = run_sequential(env, requests, 64);
  std::cout << "sequential per-row scan_counts: " << seq.per_row_rows_per_s
            << " rows/s\n"
            << "sequential 64-row scan_counts:  " << seq.batched_rows_per_s
            << " rows/s (amortization ceiling "
            << seq.batched_rows_per_s / seq.per_row_rows_per_s << "x)\n\n";

  std::cerr << "# closed-loop sweep (workers x window)...\n";
  std::vector<ClosedLoopResult> closed;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    if (workers > cores)
      std::cerr << "# WARNING: sweeping " << workers << " workers on "
                << cores << " core(s) — the pool is time-slicing, so "
                << "speedup vs sequential measures the scheduler, not the "
                << "service; check_regression.py skips this point's "
                << "throughput gate\n";
    for (const std::uint64_t window_ms : {std::uint64_t{0}, std::uint64_t{2}}) {
      closed.push_back(run_closed_loop(env, requests, workers, window_ms,
                                       seq.per_row_rows_per_s));
      const ClosedLoopResult& r = closed.back();
      std::cout << "closed-loop workers=" << r.workers
                << " window=" << r.window_ms << "ms: " << r.rows_per_s
                << " rows/s (" << r.speedup << "x sequential), mean batch "
                << r.mean_batch_rows << " rows, ";
      print_latency(std::cout, "e2e", r.e2e_us);
      std::cout << "\n";
    }
  }
  std::cout << "\n";

  std::cerr << "# open-loop Poisson arrivals (8 workers)...\n";
  std::vector<OpenLoopResult> open;
  for (const double mult : {0.5, 1.0, 2.0}) {
    open.push_back(run_open_loop(env, requests, 8, mult,
                                 seq.per_row_rows_per_s, config.seed + 77));
    const OpenLoopResult& r = open.back();
    std::cout << "open-loop " << r.rate_multiplier
              << "x: offered=" << r.offered_rows_per_s
              << " rows/s achieved=" << r.achieved_rows_per_s
              << " rows/s completed=" << r.completed
              << " rejected(deadline=" << r.rejected_deadline
              << ", queue_full=" << r.rejected_queue_full << "), ";
    print_latency(std::cout, "queue", r.queue_delay_us);
    std::cout << "\n";
  }

  std::cerr << "# overload: 2x open-loop with adaptive shedding...\n";
  constexpr double kOverloadDeadlineMs = 100.0;
  const OpenLoopResult overload = run_open_loop(
      env, requests, 8, 2.0, seq.per_row_rows_per_s, config.seed + 99,
      /*shed=*/true);
  // Goodput relative to what this box can actually score sequentially —
  // same-run numbers, so co-tenant load cancels out of the ratio.
  const double overload_goodput_ratio =
      overload.achieved_rows_per_s / seq.per_row_rows_per_s;
  std::cout << "\noverload 2x (shedding on): offered="
            << overload.offered_rows_per_s
            << " rows/s goodput=" << overload.achieved_rows_per_s
            << " rows/s (ratio " << overload_goodput_ratio
            << " of sequential capacity, target >=0.7), rejected(deadline="
            << overload.rejected_deadline
            << ", overloaded=" << overload.rejected_overloaded
            << ", queue_full=" << overload.rejected_queue_full << "), ";
  print_latency(std::cout, "e2e", overload.e2e_us);
  std::cout << "\n  completed-work p99 "
            << (overload.e2e_us.p99 <= kOverloadDeadlineMs * 1000.0
                    ? "within"
                    : "EXCEEDS")
            << " the " << kOverloadDeadlineMs << "ms deadline\n";

  // The acceptance gate: 8 workers vs the single-thread per-row baseline.
  // On a single-core host the pool cannot multiply compute, so the gate is
  // reported against the core budget actually available.
  double best8 = 0.0;
  for (const auto& r : closed)
    if (r.workers == 8) best8 = std::max(best8, r.speedup);
  std::cout << "\n8-worker best speedup: " << best8 << "x (cores=" << cores
            << ", target 3x on >=8 cores";
  if (cores < 8)
    std::cout << "; UNDER-PROVISIONED: only " << cores
              << " core(s) detected, the multi-worker gate does not apply";
  std::cout << ")\n";

  std::ofstream out("BENCH_serve.json");
  out << "{\n";
  mev::bench::write_meta_json(out);
  out << ",\n"
      << "  \"scale\": \"" << core::to_string(config.scale) << "\",\n"
      << "  \"seed\": " << config.seed << ",\n"
      << "  \"requests\": " << n_requests << ",\n"
      << "  \"feature_dim\": " << requests.front().cols() << ",\n"
      << "  \"hardware_concurrency\": " << cores << ",\n"
      << "  \"sequential\": {\"per_row_rows_per_s\": " << seq.per_row_rows_per_s
      << ", \"batched64_rows_per_s\": " << seq.batched_rows_per_s << "},\n"
      << "  \"closed_loop\": [\n";
  for (std::size_t i = 0; i < closed.size(); ++i) {
    const ClosedLoopResult& r = closed[i];
    out << "    {\"workers\": " << r.workers << ", \"window_ms\": "
        << r.window_ms << ", \"rows_per_s\": " << r.rows_per_s
        << ", \"speedup_vs_sequential\": " << r.speedup
        << ", \"mean_batch_rows\": " << r.mean_batch_rows << ", ";
    json_latency(out, "e2e_latency_us", r.e2e_us);
    out << "}" << (i + 1 < closed.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"open_loop\": [\n";
  for (std::size_t i = 0; i < open.size(); ++i) {
    const OpenLoopResult& r = open[i];
    out << "    {\"rate_multiplier\": " << r.rate_multiplier
        << ", \"offered_rows_per_s\": " << r.offered_rows_per_s
        << ", \"achieved_rows_per_s\": " << r.achieved_rows_per_s
        << ", \"completed\": " << r.completed
        << ", \"rejected_deadline\": " << r.rejected_deadline
        << ", \"rejected_queue_full\": " << r.rejected_queue_full << ", ";
    json_latency(out, "queue_delay_us", r.queue_delay_us);
    out << ", ";
    json_latency(out, "e2e_latency_us", r.e2e_us);
    out << "}" << (i + 1 < open.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"overload\": {\"rate_multiplier\": "
      << overload.rate_multiplier
      << ", \"deadline_ms\": " << kOverloadDeadlineMs
      << ", \"offered_rows_per_s\": " << overload.offered_rows_per_s
      << ", \"goodput_rows_per_s\": " << overload.achieved_rows_per_s
      << ", \"goodput_ratio\": " << overload_goodput_ratio
      << ", \"completed\": " << overload.completed
      << ", \"rejected_deadline\": " << overload.rejected_deadline
      << ", \"rejected_overloaded\": " << overload.rejected_overloaded
      << ", \"rejected_queue_full\": " << overload.rejected_queue_full
      << ", ";
  json_latency(out, "e2e_latency_us", overload.e2e_us);
  out << "},\n  \"overload_goodput_ratio\": " << overload_goodput_ratio
      << ",\n  \"best_8_worker_speedup\": " << best8 << "\n}\n";
  std::cout << "wrote BENCH_serve.json\n";
  return 0;
}
