#include "math/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mev::math {

namespace {
void require_equal(std::size_t a, std::size_t b, const char* what) {
  if (a != b) throw std::invalid_argument(what);
}
}  // namespace

double dot(std::span<const float> a, std::span<const float> b) {
  require_equal(a.size(), b.size(), "dot: length mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    s += static_cast<double>(a[i]) * b[i];
  return s;
}

double l2_distance(std::span<const float> a, std::span<const float> b) {
  require_equal(a.size(), b.size(), "l2_distance: length mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

double l1_distance(std::span<const float> a, std::span<const float> b) {
  require_equal(a.size(), b.size(), "l1_distance: length mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    s += std::abs(static_cast<double>(a[i]) - b[i]);
  return s;
}

double linf_distance(std::span<const float> a, std::span<const float> b) {
  require_equal(a.size(), b.size(), "linf_distance: length mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(static_cast<double>(a[i]) - b[i]));
  return m;
}

std::size_t l0_distance(std::span<const float> a, std::span<const float> b,
                        float tol) {
  require_equal(a.size(), b.size(), "l0_distance: length mismatch");
  std::size_t n = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::abs(a[i] - b[i]) > tol) ++n;
  return n;
}

double l2_norm(std::span<const float> a) {
  double s = 0.0;
  for (float x : a) s += static_cast<double>(x) * x;
  return std::sqrt(s);
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  require_equal(x.size(), y.size(), "axpy: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void softmax_inplace(std::span<float> logits, float temperature) {
  if (logits.empty()) return;
  if (temperature <= 0.0f)
    throw std::invalid_argument("softmax: temperature must be positive");
  float mx = logits[0];
  for (float v : logits) mx = std::max(mx, v);
  double sum = 0.0;
  for (auto& v : logits) {
    v = std::exp((v - mx) / temperature);
    sum += v;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (auto& v : logits) v *= inv;
}

std::vector<float> softmax(std::span<const float> logits, float temperature) {
  std::vector<float> out(logits.begin(), logits.end());
  softmax_inplace(out, temperature);
  return out;
}

std::size_t argmax(std::span<const float> v) {
  if (v.empty()) throw std::invalid_argument("argmax: empty input");
  return static_cast<std::size_t>(
      std::max_element(v.begin(), v.end()) - v.begin());
}

std::size_t argmin(std::span<const float> v) {
  if (v.empty()) throw std::invalid_argument("argmin: empty input");
  return static_cast<std::size_t>(
      std::min_element(v.begin(), v.end()) - v.begin());
}

}  // namespace mev::math
