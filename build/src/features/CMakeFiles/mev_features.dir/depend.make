# Empty dependencies file for mev_features.
# This may be replaced when dependencies are built.
