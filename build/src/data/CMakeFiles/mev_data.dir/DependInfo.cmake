
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/api_log.cpp" "src/data/CMakeFiles/mev_data.dir/api_log.cpp.o" "gcc" "src/data/CMakeFiles/mev_data.dir/api_log.cpp.o.d"
  "/root/repo/src/data/api_vocab.cpp" "src/data/CMakeFiles/mev_data.dir/api_vocab.cpp.o" "gcc" "src/data/CMakeFiles/mev_data.dir/api_vocab.cpp.o.d"
  "/root/repo/src/data/csv_io.cpp" "src/data/CMakeFiles/mev_data.dir/csv_io.cpp.o" "gcc" "src/data/CMakeFiles/mev_data.dir/csv_io.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/mev_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/mev_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "src/data/CMakeFiles/mev_data.dir/synthetic.cpp.o" "gcc" "src/data/CMakeFiles/mev_data.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/mev_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
