#include "features/transform.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace mev::features {

math::Matrix FeatureTransform::apply(const math::Matrix& counts) const {
  math::Matrix out(counts.rows(), dim());
  for (std::size_t r = 0; r < counts.rows(); ++r)
    out.set_row(r, apply_row(counts.row(r)));
  return out;
}

namespace {
float scale_count(features::CountScaling scaling, float count) {
  const float c = std::max(count, 0.0f);
  return scaling == CountScaling::kLog1p ? std::log1p(c) : c;
}
}  // namespace

void CountTransform::fit(const math::Matrix& train_counts) {
  if (train_counts.rows() == 0 || train_counts.cols() == 0)
    throw std::invalid_argument("CountTransform::fit: empty data");
  const float floor = scale_count(scaling_, 1.0f);
  denominators_.assign(train_counts.cols(), floor);
  for (std::size_t r = 0; r < train_counts.rows(); ++r) {
    const auto row = train_counts.row(r);
    for (std::size_t c = 0; c < row.size(); ++c)
      denominators_[c] =
          std::max(denominators_[c], scale_count(scaling_, row[c]));
  }
}

std::vector<float> CountTransform::apply_row(
    std::span<const float> counts) const {
  if (!fitted()) throw std::logic_error("CountTransform: apply before fit");
  if (counts.size() != denominators_.size())
    throw std::invalid_argument("CountTransform: dimension mismatch");
  std::vector<float> out(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const float v = scale_count(scaling_, counts[i]) / denominators_[i];
    out[i] = std::clamp(v, 0.0f, 1.0f);
  }
  return out;
}

std::unique_ptr<FeatureTransform> CountTransform::clone() const {
  return std::make_unique<CountTransform>(*this);
}

std::size_t CountTransform::counts_for_feature_value(
    std::size_t feature_index, float feature_value) const {
  if (!fitted()) throw std::logic_error("CountTransform: use before fit");
  if (feature_index >= denominators_.size())
    throw std::out_of_range("CountTransform::counts_for_feature_value");
  const float v = std::clamp(feature_value, 0.0f, 1.0f);
  const double scaled = static_cast<double>(v) * denominators_[feature_index];
  const double raw =
      scaling_ == CountScaling::kLog1p ? std::expm1(scaled) : scaled;
  // Counts are integers; forward float rounding can land raw a few ulps on
  // either side of one, so snap before taking the ceiling.
  const double snapped = std::round(raw);
  if (std::abs(raw - snapped) < 1e-3 * std::max(1.0, snapped))
    return static_cast<std::size_t>(snapped);
  return static_cast<std::size_t>(std::ceil(raw));
}

void CountTransform::save(std::ostream& os) const {
  const auto old_precision = os.precision(10);  // float-exact round trip
  os << (scaling_ == CountScaling::kLog1p ? "log1p" : "linear") << '\n'
     << denominators_.size() << '\n';
  for (float d : denominators_) os << d << '\n';
  os.precision(old_precision);
}

CountTransform CountTransform::load(std::istream& is) {
  std::string mode;
  std::size_t n = 0;
  if (!(is >> mode >> n))
    throw std::runtime_error("CountTransform::load: bad header");
  if (mode != "log1p" && mode != "linear")
    throw std::runtime_error("CountTransform::load: unknown scaling " + mode);
  CountTransform t(mode == "log1p" ? CountScaling::kLog1p
                                   : CountScaling::kLinear);
  t.denominators_.resize(n);
  for (auto& d : t.denominators_)
    if (!(is >> d)) throw std::runtime_error("CountTransform::load: truncated");
  return t;
}

std::vector<float> BinaryTransform::apply_row(
    std::span<const float> counts) const {
  if (counts.size() != dim_)
    throw std::invalid_argument("BinaryTransform: dimension mismatch");
  std::vector<float> out(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i)
    out[i] = counts[i] > 0.0f ? 1.0f : 0.0f;
  return out;
}

std::unique_ptr<FeatureTransform> BinaryTransform::clone() const {
  return std::make_unique<BinaryTransform>(*this);
}

}  // namespace mev::features
