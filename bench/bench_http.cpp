// HTTP serving bench for net::ScoringFrontend (DESIGN.md §8.2).
//
// Measures what the network edge costs relative to calling the service
// in-process. Three phases on the Table-IV 491-feature detector:
//
//   1. Sequential baseline — one thread, per-row scan_counts (context for
//      the offered rate; same anchor as bench_serve).
//   2. In-process open-loop — seeded Poisson arrivals of 16-row requests
//      at 1x the sequential rate, submitted straight into the service.
//   3. HTTP open-loop — the SAME offered schedule replayed over N
//      keep-alive connections as binary POST /v1/score requests (one
//      authenticated API key), responses matched in arrival order per
//      connection.
//
// The gated contract (bench/check_regression.py --kind http): the HTTP
// path must achieve >= 50% of the in-process open-loop rows/s at the same
// offered rate, with requests >> connections (keep-alive reuse, floored
// at 16 requests per connection) — plus relative latency/throughput
// comparison against the committed BENCH_http.json baseline.
//
//   ./bench_http [tiny|fast|full]   (default fast)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bench_meta.hpp"
#include "math/rng.hpp"
#include "net/frontend.hpp"
#include "net/wire.hpp"
#include "serve/scoring_service.hpp"

using namespace mev;

namespace {

using SteadyClock = std::chrono::steady_clock;

constexpr std::size_t kRowsPerRequest = 16;
constexpr std::size_t kConnections = 4;
constexpr std::uint64_t kDeadlineMs = 100;
constexpr const char* kBenchKey = "bench";

double seconds_since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

std::uint64_t us_since(SteadyClock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          SteadyClock::now() - start)
          .count());
}

/// kRowsPerRequest-row requests cycled from the real test counts.
std::vector<math::Matrix> make_requests(const bench::Environment& env,
                                        std::size_t n) {
  const math::Matrix& pool = env.bundle.test.counts;
  std::vector<math::Matrix> requests;
  requests.reserve(n);
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < n; ++i) {
    math::Matrix block(kRowsPerRequest, pool.cols());
    for (std::size_t r = 0; r < kRowsPerRequest; ++r)
      block.set_row(r, pool.row(cursor++ % pool.rows()));
    requests.push_back(std::move(block));
  }
  return requests;
}

double run_sequential(bench::Environment& env,
                      const std::vector<math::Matrix>& requests) {
  core::MalwareDetector& detector = env.detector();
  nn::InferenceSession session = detector.make_session(kRowsPerRequest);
  detector.scan_counts(session, requests.front());  // warm-up
  std::size_t malware = 0;
  const auto start = SteadyClock::now();
  for (const math::Matrix& request : requests)
    for (const auto& verdict : detector.scan_counts(session, request))
      malware += verdict.is_malware() ? 1 : 0;
  const double rows =
      static_cast<double>(requests.size() * kRowsPerRequest);
  const double rate = rows / seconds_since(start);
  std::cerr << "# sequential: " << malware << " malware verdicts\n";
  return rate;
}

/// Poisson arrival offsets (seconds from phase start) for `n` requests at
/// `rows_per_s` offered rows/s; identical schedule for both loop phases.
std::vector<double> make_schedule(std::size_t n, double rows_per_s,
                                  std::uint64_t seed) {
  const double request_rate = rows_per_s / kRowsPerRequest;
  math::Rng rng(seed);
  std::vector<double> arrival_s(n);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += rng.exponential(request_rate);
    arrival_s[i] = t;
  }
  return arrival_s;
}

struct Percentiles {
  double mean = 0.0;
  std::uint64_t p50 = 0, p95 = 0, p99 = 0, max = 0;
};

Percentiles summarize_us(std::vector<std::uint64_t> samples) {
  Percentiles p;
  if (samples.empty()) return p;
  std::sort(samples.begin(), samples.end());
  double sum = 0.0;
  for (const std::uint64_t v : samples) sum += static_cast<double>(v);
  p.mean = sum / static_cast<double>(samples.size());
  const auto at = [&](double q) {
    const std::size_t idx = std::min(
        samples.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(samples.size())));
    return samples[idx];
  };
  p.p50 = at(0.50);
  p.p95 = at(0.95);
  p.p99 = at(0.99);
  p.max = samples.back();
  return p;
}

struct LoopResult {
  double offered_rows_per_s = 0.0;
  double achieved_rows_per_s = 0.0;
  std::uint64_t completed_requests = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_overloaded = 0;
  std::uint64_t other_errors = 0;
  Percentiles latency_us;
};

serve::ServiceConfig service_config() {
  serve::ServiceConfig cfg;
  cfg.workers = 4;
  cfg.max_batch_rows = 64;
  cfg.max_queue_delay_ms = 2;
  cfg.max_queue_rows = 8192;
  return cfg;
}

LoopResult run_inproc_open_loop(bench::Environment& env,
                                const std::vector<math::Matrix>& requests,
                                const std::vector<double>& arrival_s,
                                double offered_rows_per_s) {
  serve::ScoringService service(env.detector().pipeline(),
                                env.detector().network_ptr(),
                                service_config());
  service.score(requests.front());  // warm-up

  serve::SubmitOptions options;
  options.deadline_ms = kDeadlineMs;
  std::vector<serve::ScoreFuture> futures;
  futures.reserve(requests.size());
  const auto start = SteadyClock::now();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto due =
        start + std::chrono::duration_cast<SteadyClock::duration>(
                    std::chrono::duration<double>(arrival_s[i]));
    if (due > SteadyClock::now()) std::this_thread::sleep_until(due);
    math::Matrix copy(requests[i].rows(), requests[i].cols());
    for (std::size_t r = 0; r < copy.rows(); ++r)
      copy.set_row(r, requests[i].row(r));
    futures.push_back(service.submit(std::move(copy), options));
  }
  LoopResult result;
  for (auto& future : futures)
    if (future.get().ok()) ++result.completed_requests;
  const double elapsed = seconds_since(start);
  service.shutdown();

  const serve::ServiceStats stats = service.stats();
  result.offered_rows_per_s = offered_rows_per_s;
  result.achieved_rows_per_s =
      static_cast<double>(result.completed_requests * kRowsPerRequest) /
      elapsed;
  result.rejected_deadline = stats.rejected_deadline;
  result.rejected_queue_full = stats.rejected_queue_full;
  result.rejected_overloaded = stats.rejected_overloaded;
  const serve::LatencySummary e2e = serve::summarize(stats.e2e_latency_us);
  result.latency_us.mean = e2e.mean;
  result.latency_us.p50 = e2e.p50;
  result.latency_us.p95 = e2e.p95;
  result.latency_us.p99 = e2e.p99;
  result.latency_us.max = e2e.max;
  return result;
}

/// One keep-alive connection replaying its share of the schedule: a
/// sender thread paces binary POSTs; the reader matches responses FIFO
/// (the frontend writes responses in arrival order per connection).
class BenchConnection {
 public:
  bool connect_to(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    return true;
  }
  ~BenchConnection() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool send_raw(const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Next framed response's status code, or -1 on EOF.
  int read_status() {
    for (;;) {
      const std::size_t header_end = buffer_.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        const std::string headers = buffer_.substr(0, header_end + 4);
        std::size_t body_len = 0;
        const std::size_t cl = headers.find("Content-Length: ");
        if (cl != std::string::npos)
          body_len =
              static_cast<std::size_t>(std::stoul(headers.substr(cl + 16)));
        if (buffer_.size() >= header_end + 4 + body_len) {
          const int status = std::stoi(headers.substr(9, 3));
          buffer_.erase(0, header_end + 4 + body_len);
          return status;
        }
      }
      char chunk[16384];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return -1;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

LoopResult run_http_open_loop(bench::Environment& env,
                              const std::vector<math::Matrix>& requests,
                              const std::vector<double>& arrival_s,
                              double offered_rows_per_s,
                              std::uint64_t* requests_per_connection) {
  serve::ScoringService service(env.detector().pipeline(),
                                env.detector().network_ptr(),
                                service_config());
  service.score(requests.front());  // warm-up

  net::FrontendConfig frontend_cfg;
  frontend_cfg.port = 0;
  frontend_cfg.worker_threads = kConnections;
  frontend_cfg.max_pipeline = 128;
  frontend_cfg.io_timeout_ms = 10'000;
  frontend_cfg.api_keys = {net::ApiKey{kBenchKey, "bench", 1e12, 1e12}};
  net::ScoringFrontend frontend(service, frontend_cfg);
  if (!frontend.start()) {
    std::cerr << "FATAL: frontend bind failed\n";
    std::exit(1);
  }

  // Pre-encode every request: the bench measures the serving path, not
  // the client's encoder.
  std::vector<std::string> wire;
  wire.reserve(requests.size());
  std::size_t request_index = 0;
  for (const math::Matrix& request : requests) {
    const std::string body = net::encode_binary_rows(request);
    // Correlation enabled: every request carries a deterministic W3C
    // traceparent so the bench exercises the full tracing ingest path
    // (parse, context inheritance, X-Trace-Id echo, Server-Timing).
    char traceparent[64];
    std::snprintf(traceparent, sizeof(traceparent),
                  "00-%016llxdeadbeefcafe%04llx-%016llx-01",
                  static_cast<unsigned long long>(request_index + 1),
                  static_cast<unsigned long long>(request_index & 0xffff),
                  static_cast<unsigned long long>(request_index * 2 + 1));
    ++request_index;
    std::string req =
        "POST /v1/score HTTP/1.1\r\n"
        "Content-Type: application/x-mev-rows\r\n"
        "X-Api-Key: ";
    req += kBenchKey;
    req += "\r\ntraceparent: ";
    req += traceparent;
    req += "\r\nX-Deadline-Ms: " + std::to_string(kDeadlineMs) +
           "\r\nContent-Length: " + std::to_string(body.size()) + "\r\n\r\n";
    req += body;
    wire.push_back(std::move(req));
  }

  // Round-robin the global schedule across connections; per-connection
  // order preserves the global order, so FIFO response matching holds.
  struct PerConnection {
    BenchConnection socket;
    std::vector<std::size_t> indices;           // into wire/arrival_s
    std::mutex mutex;
    std::deque<SteadyClock::time_point> sent;   // pending send timestamps
    std::vector<std::uint64_t> latencies;
    std::uint64_t ok = 0, deadline = 0, queue_full = 0, overloaded = 0,
                  other = 0;
  };
  std::vector<std::unique_ptr<PerConnection>> conns;
  for (std::size_t c = 0; c < kConnections; ++c) {
    conns.push_back(std::make_unique<PerConnection>());
    if (!conns.back()->socket.connect_to(frontend.port())) {
      std::cerr << "FATAL: connect failed\n";
      std::exit(1);
    }
  }
  for (std::size_t i = 0; i < wire.size(); ++i)
    conns[i % kConnections]->indices.push_back(i);

  const auto start = SteadyClock::now();
  std::vector<std::thread> threads;
  for (auto& conn_ptr : conns) {
    PerConnection* conn = conn_ptr.get();
    // Sender: paces this connection's share of the Poisson schedule.
    threads.emplace_back([conn, &wire, &arrival_s, start] {
      for (const std::size_t i : conn->indices) {
        const auto due =
            start + std::chrono::duration_cast<SteadyClock::duration>(
                        std::chrono::duration<double>(arrival_s[i]));
        if (due > SteadyClock::now()) std::this_thread::sleep_until(due);
        {
          std::lock_guard<std::mutex> lock(conn->mutex);
          conn->sent.push_back(SteadyClock::now());
        }
        if (!conn->socket.send_raw(wire[i])) break;
      }
    });
    // Reader: one response per sent request, FIFO.
    threads.emplace_back([conn] {
      const std::size_t expected = conn->indices.size();
      for (std::size_t done = 0; done < expected; ++done) {
        const int status = conn->socket.read_status();
        if (status < 0) break;
        SteadyClock::time_point sent_at;
        {
          std::lock_guard<std::mutex> lock(conn->mutex);
          sent_at = conn->sent.front();
          conn->sent.pop_front();
        }
        if (status == 200) {
          ++conn->ok;
          conn->latencies.push_back(us_since(sent_at));
        } else if (status == 504) {
          ++conn->deadline;
        } else if (status == 503) {
          ++conn->queue_full;  // reason split comes from frontend stats
        } else {
          ++conn->other;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed = seconds_since(start);

  LoopResult result;
  std::vector<std::uint64_t> latencies;
  for (const auto& conn : conns) {
    result.completed_requests += conn->ok;
    result.rejected_deadline += conn->deadline;
    result.other_errors += conn->other;
    latencies.insert(latencies.end(), conn->latencies.begin(),
                     conn->latencies.end());
  }
  const net::FrontendStats stats = frontend.stats();
  result.rejected_queue_full = stats.rejected_queue_full;
  result.rejected_overloaded = stats.rejected_overloaded;
  result.offered_rows_per_s = offered_rows_per_s;
  result.achieved_rows_per_s =
      static_cast<double>(result.completed_requests * kRowsPerRequest) /
      elapsed;
  result.latency_us = summarize_us(std::move(latencies));
  *requests_per_connection =
      stats.connections_accepted > 0
          ? stats.requests / stats.connections_accepted
          : 0;

  frontend.stop();
  service.shutdown();
  return result;
}

void print_loop(const char* name, const LoopResult& r) {
  std::cout << name << ": offered=" << r.offered_rows_per_s
            << " rows/s achieved=" << r.achieved_rows_per_s
            << " rows/s completed=" << r.completed_requests
            << " rejected(deadline=" << r.rejected_deadline
            << ", queue_full=" << r.rejected_queue_full
            << ", overloaded=" << r.rejected_overloaded
            << ", other=" << r.other_errors << ") latency p50="
            << r.latency_us.p50 << "us p95=" << r.latency_us.p95
            << "us p99=" << r.latency_us.p99 << "us\n";
}

void json_loop(std::ostream& os, const LoopResult& r) {
  os << "{\"offered_rows_per_s\": " << r.offered_rows_per_s
     << ", \"achieved_rows_per_s\": " << r.achieved_rows_per_s
     << ", \"completed_requests\": " << r.completed_requests
     << ", \"rejected_deadline\": " << r.rejected_deadline
     << ", \"rejected_queue_full\": " << r.rejected_queue_full
     << ", \"rejected_overloaded\": " << r.rejected_overloaded
     << ", \"other_errors\": " << r.other_errors
     << ", \"latency_us\": {\"mean\": " << r.latency_us.mean
     << ", \"p50\": " << r.latency_us.p50
     << ", \"p95\": " << r.latency_us.p95
     << ", \"p99\": " << r.latency_us.p99
     << ", \"max\": " << r.latency_us.max << "}}";
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::parse_scale(argc, argv, "fast");
  bench::Environment env = bench::make_environment(config);

  std::size_t n_requests = 512;
  if (config.scale == core::ExperimentScale::kTiny) n_requests = 128;
  if (config.scale == core::ExperimentScale::kFull) n_requests = 2048;
  const std::vector<math::Matrix> requests = make_requests(env, n_requests);
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::cerr << "# requests=" << n_requests << " x " << kRowsPerRequest
            << " rows, feature_dim=" << requests.front().cols()
            << " connections=" << kConnections
            << " hardware_concurrency=" << cores << "\n";

  std::cerr << "# sequential baseline...\n";
  const double sequential_rows_per_s = run_sequential(env, requests);
  std::cout << "sequential " << kRowsPerRequest
            << "-row scan_counts: " << sequential_rows_per_s << " rows/s\n";

  const double offered = sequential_rows_per_s;  // rate_multiplier 1.0
  const std::vector<double> schedule =
      make_schedule(n_requests, offered, config.seed + 177);

  std::cerr << "# in-process open-loop at 1x...\n";
  const LoopResult inproc =
      run_inproc_open_loop(env, requests, schedule, offered);
  print_loop("in-process open-loop 1x", inproc);

  std::cerr << "# HTTP open-loop at 1x (" << kConnections
            << " keep-alive connections, binary rows)...\n";
  std::uint64_t requests_per_connection = 0;
  const LoopResult http = run_http_open_loop(env, requests, schedule, offered,
                                             &requests_per_connection);
  print_loop("http open-loop 1x", http);

  const double ratio = inproc.achieved_rows_per_s > 0.0
                           ? http.achieved_rows_per_s /
                                 inproc.achieved_rows_per_s
                           : 0.0;
  std::cout << "\nhttp/in-process achieved ratio: " << ratio
            << " (floor 0.5)\n"
            << "requests per connection: " << requests_per_connection
            << " (keep-alive reuse, floor 16)\n";

  std::ofstream out("BENCH_http.json");
  out << "{\n";
  mev::bench::write_meta_json(out);
  out << ",\n"
      << "  \"scale\": \"" << core::to_string(config.scale) << "\",\n"
      << "  \"seed\": " << config.seed << ",\n"
      << "  \"requests\": " << n_requests << ",\n"
      << "  \"rows_per_request\": " << kRowsPerRequest << ",\n"
      << "  \"connections\": " << kConnections << ",\n"
      << "  \"feature_dim\": " << requests.front().cols() << ",\n"
      << "  \"hardware_concurrency\": " << cores << ",\n"
      << "  \"deadline_ms\": " << kDeadlineMs << ",\n"
      << "  \"sequential_rows_per_s\": " << sequential_rows_per_s << ",\n"
      << "  \"inproc_open_loop\": ";
  json_loop(out, inproc);
  out << ",\n  \"http_open_loop\": ";
  json_loop(out, http);
  out << ",\n  \"requests_per_connection\": " << requests_per_connection
      << ",\n  \"http_vs_inproc_ratio\": " << ratio << "\n}\n";
  std::cout << "wrote BENCH_http.json\n";
  return 0;
}
