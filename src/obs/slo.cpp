#include "obs/slo.hpp"

#include <cstdio>

namespace mev::obs {

namespace {

WindowConfig ring_config(const SloConfig& config) noexcept {
  WindowConfig w;
  w.bucket_us = config.bucket_us;
  w.buckets = config.buckets;
  return w;
}

double burn(std::uint64_t bad, std::uint64_t total,
            double objective) noexcept {
  if (total == 0) return 0.0;
  const double budget = 1.0 - objective;
  if (budget <= 0.0) return 0.0;  // a 100% objective has no budget to burn
  return (static_cast<double>(bad) / static_cast<double>(total)) / budget;
}

void append_number(std::string& out, double v) {
  // Fixed 6-decimal rendering keeps /sloz greppable and deterministic.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  out += buf;
}

void append_objective_json(std::string& out, const char* name,
                           const SloTracker::Objective& o) {
  out += '"';
  out += name;
  out += "\":{\"objective\":";
  append_number(out, o.objective);
  out += ",\"fast_burn_rate\":";
  append_number(out, o.fast_burn);
  out += ",\"slow_burn_rate\":";
  append_number(out, o.slow_burn);
  out += ",\"error_budget_remaining\":";
  append_number(out, o.budget_remaining);
  out += ",\"fast_total\":";
  out += std::to_string(o.fast_total);
  out += ",\"fast_bad\":";
  out += std::to_string(o.fast_bad);
  out += ",\"slow_total\":";
  out += std::to_string(o.slow_total);
  out += ",\"slow_bad\":";
  out += std::to_string(o.slow_bad);
  out += ",\"lifetime_total\":";
  out += std::to_string(o.lifetime_total);
  out += ",\"lifetime_bad\":";
  out += std::to_string(o.lifetime_bad);
  out += '}';
}

}  // namespace

SloTracker::SloTracker(SloConfig config)
    : config_(config),
      availability_(ring_config(config_)),
      latency_(ring_config(config_)) {}

void SloTracker::record(std::uint64_t now_us, bool ok,
                        std::uint64_t latency_us) noexcept {
  availability_.total.add(now_us);
  availability_.lifetime_total.fetch_add(1, std::memory_order_relaxed);
  if (!ok) {
    availability_.bad.add(now_us);
    availability_.lifetime_bad.fetch_add(1, std::memory_order_relaxed);
    return;  // rejected requests have no meaningful latency sample
  }
  latency_.total.add(now_us);
  latency_.lifetime_total.fetch_add(1, std::memory_order_relaxed);
  if (latency_us > config_.latency_threshold_us) {
    latency_.bad.add(now_us);
    latency_.lifetime_bad.fetch_add(1, std::memory_order_relaxed);
  }
}

SloTracker::Objective SloTracker::read(const WindowedObjective& w,
                                       double objective,
                                       std::uint64_t now_us) const noexcept {
  Objective o;
  o.objective = objective;
  o.fast_total = w.total.total(now_us, config_.fast_window_us);
  o.fast_bad = w.bad.total(now_us, config_.fast_window_us);
  o.slow_total = w.total.total(now_us, config_.slow_window_us);
  o.slow_bad = w.bad.total(now_us, config_.slow_window_us);
  o.fast_burn = burn(o.fast_bad, o.fast_total, objective);
  o.slow_burn = burn(o.slow_bad, o.slow_total, objective);
  o.lifetime_total = w.lifetime_total.load(std::memory_order_relaxed);
  o.lifetime_bad = w.lifetime_bad.load(std::memory_order_relaxed);
  o.budget_remaining =
      o.lifetime_total == 0
          ? 1.0
          : 1.0 - burn(o.lifetime_bad, o.lifetime_total, objective);
  return o;
}

SloTracker::Snapshot SloTracker::snapshot(std::uint64_t now_us) const noexcept {
  Snapshot s;
  s.availability =
      read(availability_, config_.availability_objective, now_us);
  s.latency = read(latency_, config_.latency_objective, now_us);
  s.fast_burn_alert = s.availability.fast_burn > config_.fast_burn_alert ||
                      s.latency.fast_burn > config_.fast_burn_alert;
  return s;
}

std::string SloTracker::to_json(std::uint64_t now_us) const {
  const Snapshot s = snapshot(now_us);
  std::string out = "{";
  append_objective_json(out, "availability", s.availability);
  out += ',';
  append_objective_json(out, "latency", s.latency);
  out += ",\"fast_burn_alert\":";
  out += s.fast_burn_alert ? "true" : "false";
  out += ",\"fast_window_s\":";
  out += std::to_string(config_.fast_window_us / 1'000'000);
  out += ",\"slow_window_s\":";
  out += std::to_string(config_.slow_window_us / 1'000'000);
  out += ",\"latency_threshold_us\":";
  out += std::to_string(config_.latency_threshold_us);
  out += "}\n";
  return out;
}

void SloTracker::register_gauges(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  const auto make = [registry](const char* objective) {
    ObjectiveGauges g;
    g.fast_burn = registry->gauge(
        "mev.slo.fast_burn_rate",
        "error-budget burn multiple over the fast (~5m) window",
        {{"objective", objective}});
    g.slow_burn = registry->gauge(
        "mev.slo.slow_burn_rate",
        "error-budget burn multiple over the slow (~1h) window",
        {{"objective", objective}});
    g.budget_remaining = registry->gauge(
        "mev.slo.error_budget_remaining",
        "lifetime error budget remaining (1 = untouched, <0 = overspent)",
        {{"objective", objective}});
    return g;
  };
  availability_gauges_ = make("availability");
  latency_gauges_ = make("latency");
}

void SloTracker::refresh_gauges(std::uint64_t now_us) noexcept {
  const Snapshot s = snapshot(now_us);
  availability_gauges_.fast_burn.set(s.availability.fast_burn);
  availability_gauges_.slow_burn.set(s.availability.slow_burn);
  availability_gauges_.budget_remaining.set(s.availability.budget_remaining);
  latency_gauges_.fast_burn.set(s.latency.fast_burn);
  latency_gauges_.slow_burn.set(s.latency.slow_burn);
  latency_gauges_.budget_remaining.set(s.latency.budget_remaining);
}

}  // namespace mev::obs
