// Reproduces the live grey-box test (§III-B, third experiment): the
// substitute model selects one API to add; that API is inserted into the
// malware sample's log k = 0..8 times; the target detector re-scans the
// modified log through the full pipeline each time.
//
// Expected shape (paper): P(malware) = 98.43% at k=0, drops to 88.88% at
// k=1, and to ~0% by k=8 — monotone decay to evasion.
//
//   ./bench_live_greybox [tiny|fast|full]
#include <iostream>

#include "attack/source_attack.hpp"
#include "bench_common.hpp"
#include "core/substitute.hpp"
#include "eval/report.hpp"

using namespace mev;

int main(int argc, char** argv) {
  auto env = bench::make_environment(bench::parse_scale(argc, argv));

  std::cerr << "# training the substitute (exact features)...\n";
  const data::CountDataset attacker_data = bench::attacker_dataset(env);
  auto sub =
      core::train_substitute_exact_features(attacker_data, env.config,
                                           env.detector().pipeline());

  // Find malware logs the target detects with high confidence, like the
  // sample handed to the paper's security researcher (98.43%).
  math::Rng rng(env.config.seed + 404);
  std::cout << "Live grey-box test: insert one substitute-chosen API call "
               "k times,\nre-run the full log->features->DNN pipeline "
               "(paper: 98.43% -> 88.88% at k=1 -> 0% at k=8)\n";

  std::size_t shown = 0;
  double best_confidence = 0.0;
  for (int attempt = 0; attempt < 600 && shown < 3; ++attempt) {
    const data::ApiLog log = env.generator.generate_log(
        data::kMalwareLabel, "sample_live_" + std::to_string(attempt) + ".exe",
        rng, /*drifted=*/true);
    const auto baseline = env.detector().scan(log);
    best_confidence = std::max(best_confidence, baseline.malware_confidence);
    if (!baseline.is_malware() || baseline.malware_confidence < 0.75) continue;

    attack::LiveTestResult live;
    try {
      live = attack::run_live_test(env.target_network(), *sub.network,
                                   env.detector().pipeline(), log,
                                   /*max_insertions=*/8);
    } catch (const std::exception& e) {
      std::cerr << "# skipping sample: " << e.what() << "\n";
      continue;
    }
    ++shown;

    eval::Table table("Sample " + log.sample_name + " — inserted API: '" +
                      live.api_name + "'");
    table.header({"insertions k", "P(malware)", "verdict"});
    for (const auto& p : live.points)
      table.row({std::to_string(p.insertions),
                 eval::Table::fmt(p.malware_confidence, 4),
                 p.predicted_class == data::kMalwareLabel ? "MALWARE"
                                                          : "clean (evaded)"});
    std::cout << "\n" << table.render();

    const double start = live.points.front().malware_confidence;
    const double end = live.points.back().malware_confidence;
    std::cout << "confidence decay: " << eval::Table::fmt(start, 4) << " -> "
              << eval::Table::fmt(end, 4) << " after 8 insertions"
              << (live.points.back().predicted_class == data::kCleanLabel
                      ? " (EVADED)"
                      : "")
              << "\n";
  }
  if (shown == 0) {
    std::cerr << "no suitable high-confidence malware sample found "
                 "(best confidence seen: "
              << best_confidence << ")\n";
    return 1;
  }
  return 0;
}
