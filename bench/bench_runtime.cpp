// Microbenchmarks for the resilience layer's clean-path overhead: what the
// retry/breaker decorator and the query cache cost when the oracle is
// healthy (the common case — fault handling should be pay-as-you-go).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "math/matrix.hpp"
#include "math/rng.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/query_cache.hpp"
#include "runtime/resilient_oracle.hpp"

using namespace mev;

namespace {

/// Minimal oracle: a threshold on feature 0, no model evaluation — so the
/// measurements isolate decorator overhead, not oracle cost.
class ThresholdOracle final : public runtime::CountOracle {
 public:
  std::vector<int> label_counts(const math::Matrix& counts) override {
    record_queries(counts.rows());
    std::vector<int> labels(counts.rows());
    for (std::size_t i = 0; i < counts.rows(); ++i)
      labels[i] = counts(i, 0) > 5.0f ? 1 : 0;
    return labels;
  }
};

math::Matrix random_counts(std::size_t rows, std::size_t cols,
                           std::uint64_t seed) {
  math::Rng rng(seed);
  math::Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.poisson(5.0));
  return m;
}

void BM_RawOracle(benchmark::State& state) {
  ThresholdOracle oracle;
  const math::Matrix counts =
      random_counts(static_cast<std::size_t>(state.range(0)), 64, 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(oracle.label_counts(counts));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RawOracle)->Arg(64)->Arg(512);

void BM_ResilientOracleCleanPath(benchmark::State& state) {
  ThresholdOracle inner;
  runtime::FakeClock clock;
  runtime::ResilientOracle oracle(inner, {}, {}, &clock);
  const math::Matrix counts =
      random_counts(static_cast<std::size_t>(state.range(0)), 64, 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(oracle.label_counts(counts));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ResilientOracleCleanPath)->Arg(64)->Arg(512);

void BM_ResilientOracleUnderFaults(benchmark::State& state) {
  ThresholdOracle inner;
  runtime::FakeClock clock;
  runtime::FaultInjectingOracle flaky(inner, runtime::FaultProfile::flaky(),
                                      &clock);
  runtime::ResilientOracle oracle(flaky, {}, {}, &clock);
  const math::Matrix counts =
      random_counts(static_cast<std::size_t>(state.range(0)), 64, 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(oracle.label_counts(counts));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ResilientOracleUnderFaults)->Arg(64)->Arg(512);

void BM_QueryCacheMissPath(benchmark::State& state) {
  const math::Matrix counts =
      random_counts(static_cast<std::size_t>(state.range(0)), 64, 2);
  for (auto _ : state) {
    state.PauseTiming();
    ThresholdOracle inner;
    runtime::CachingOracle oracle(inner);
    state.ResumeTiming();
    benchmark::DoNotOptimize(oracle.label_counts(counts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QueryCacheMissPath)->Arg(64)->Arg(512);

void BM_QueryCacheHitPath(benchmark::State& state) {
  ThresholdOracle inner;
  runtime::CachingOracle oracle(inner);
  const math::Matrix counts =
      random_counts(static_cast<std::size_t>(state.range(0)), 64, 2);
  (void)oracle.label_counts(counts);  // warm the cache
  for (auto _ : state)
    benchmark::DoNotOptimize(oracle.label_counts(counts));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QueryCacheHitPath)->Arg(64)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
