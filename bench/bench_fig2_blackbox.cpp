// Implements the paper's proposed Fig. 2 framework end to end (the paper
// leaves the real-world black-box test as future work): a label-only
// oracle, Jacobian-augmented substitute training, then JSMA transfer —
// including an ablation of substitute depth vs transfer rate (DESIGN.md §5).
//
// Expected shape: substitute/oracle agreement rises over augmentation
// rounds; black-box transfer evades the target, but less effectively than
// grey-box (which is itself weaker than white-box).
//
//   ./bench_fig2_blackbox [tiny|fast|full]
#include <iostream>

#include "attack/jsma.hpp"
#include "bench_common.hpp"
#include "core/blackbox.hpp"
#include "core/greybox.hpp"
#include "eval/report.hpp"

using namespace mev;

namespace {

struct BlackBoxOutcome {
  std::size_t queries = 0;
  double final_agreement = 0.0;
  double target_detection = 0.0;
};

BlackBoxOutcome attack_with_architecture(bench::Environment& env,
                                         const nn::MlpConfig& arch,
                                         bool print_rounds) {
  core::DetectorOracle oracle(env.detector());

  // The attacker's small seed set, from an independently seeded generator.
  data::GenerativeConfig attacker_gen_cfg;
  attacker_gen_cfg.seed = env.config.seed ^ 0xB1ACBBC5ULL;
  const data::GenerativeModel attacker_gen(data::ApiVocab::instance(),
                                           attacker_gen_cfg);
  math::Rng rng(env.config.seed + 77);
  const std::size_t seed_n =
      env.config.scale == core::ExperimentScale::kTiny ? 40 : 160;
  const data::CountDataset seed =
      attacker_gen.generate_dataset(seed_n / 2, seed_n / 2, rng);

  core::BlackBoxConfig cfg;
  cfg.substitute_architecture = arch;
  cfg.training_per_round = env.config.substitute_training();
  cfg.training_per_round.epochs =
      std::max<std::size_t>(5, cfg.training_per_round.epochs / 2);
  const auto result = core::run_blackbox_framework(oracle, seed.counts, cfg);

  if (print_rounds) {
    eval::Table t("Fig. 2 framework: substitute training rounds");
    t.header({"round", "dataset rows", "cumulative queries",
              "agreement with oracle"});
    for (std::size_t r = 0; r < result.rounds.size(); ++r)
      t.row({std::to_string(r), std::to_string(result.rounds[r].dataset_rows),
             std::to_string(result.rounds[r].oracle_queries),
             eval::Table::fmt(result.rounds[r].oracle_agreement)});
    std::cout << t.render() << "\n";
  }

  // Craft on the substitute in the attacker's feature space; realize as
  // integer counts; deploy through the target's full pipeline.
  attack::JsmaConfig jsma_cfg;
  jsma_cfg.theta = 0.1f;
  jsma_cfg.gamma = 0.025f;
  const attack::Jsma jsma(jsma_cfg);
  const math::Matrix attacker_features =
      result.attacker_transform.apply(env.malware_counts);
  const auto crafted = jsma.craft(*result.substitute, attacker_features);
  // Delta-based realization keeps the attack add-only: full-vector
  // inversion would silently REDUCE counts wherever the attacker's
  // transform clipped a drifted feature at 1.
  const math::Matrix additions = core::additions_from_count_perturbation(
      result.attacker_transform, attacker_features, crafted.adversarial);
  math::Matrix adv_counts = env.malware_counts;
  adv_counts += additions;
  const auto verdicts = env.detector().scan_counts(adv_counts);
  std::size_t detected = 0;
  for (const auto& v : verdicts) detected += v.is_malware() ? 1 : 0;

  BlackBoxOutcome outcome;
  outcome.queries = result.total_queries;
  outcome.final_agreement = result.rounds.back().oracle_agreement;
  outcome.target_detection =
      static_cast<double>(detected) / static_cast<double>(verdicts.size());
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  auto env = bench::make_environment(bench::parse_scale(argc, argv));
  const auto cm = bench::baseline_confusion(env);
  std::cout << "Fig. 2 — black-box attack framework\n"
            << "target baseline: TPR=" << eval::Table::fmt(cm.tpr())
            << " TNR=" << eval::Table::fmt(cm.tnr()) << "\n\n";

  std::cerr << "# running the framework with the Table IV substitute...\n";
  const auto main_outcome = attack_with_architecture(
      env, env.config.substitute_architecture(data::kNumApiFeatures), true);

  eval::Table t("Black-box attack result (theta=0.1, gamma=0.025)");
  t.header({"metric", "value"});
  t.row({"oracle queries", std::to_string(main_outcome.queries)});
  t.row({"final substitute/oracle agreement",
         eval::Table::fmt(main_outcome.final_agreement)});
  t.row({"target detection on black-box advex",
         eval::Table::fmt(main_outcome.target_detection)});
  t.row({"transfer (evasion) rate",
         eval::Table::fmt(1.0 - main_outcome.target_detection)});
  std::cout << t.render() << "\n";

  // Ablation: substitute depth vs transfer.
  std::cerr << "# ablation: substitute depth...\n";
  eval::Table ab("Ablation: substitute architecture vs black-box transfer");
  ab.header({"architecture", "agreement", "target detection", "transfer"});
  const std::size_t base_width =
      env.config.scale == core::ExperimentScale::kTiny ? 48 : 192;
  const std::vector<std::vector<std::size_t>> architectures = {
      {data::kNumApiFeatures, base_width, 2},
      {data::kNumApiFeatures, base_width, base_width, 2},
      {data::kNumApiFeatures, base_width, base_width + base_width / 4,
       base_width, 2},
  };
  for (const auto& dims : architectures) {
    nn::MlpConfig arch;
    arch.dims = dims;
    arch.seed = env.config.seed ^ 0xAB1A;
    const auto outcome = attack_with_architecture(env, arch, false);
    std::string name;
    for (std::size_t i = 0; i < dims.size(); ++i) {
      if (i) name += '-';
      name += std::to_string(dims[i]);
    }
    ab.row({name, eval::Table::fmt(outcome.final_agreement),
            eval::Table::fmt(outcome.target_detection),
            eval::Table::fmt(1.0 - outcome.target_detection)});
  }
  std::cout << ab.render();
  return 0;
}
