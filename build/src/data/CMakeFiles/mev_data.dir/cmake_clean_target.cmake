file(REMOVE_RECURSE
  "libmev_data.a"
)
