// Substitute-model training for grey-box attacks (§II-B.2, Table IV).
//
// The grey-box attacker trains its own 5-layer DNN on its own data. The
// paper's two grey-box variants differ in feature knowledge:
//  * exact features — the attacker reproduces the target's count
//    transformation;
//  * API names only — the attacker falls back to binary presence features
//    (Fig. 4(c)).
#pragma once

#include <memory>

#include "core/detector.hpp"
#include "core/experiment_config.hpp"
#include "data/dataset.hpp"
#include "features/pipeline.hpp"
#include "nn/network.hpp"
#include "nn/trainer.hpp"

namespace mev::core {

struct SubstituteResult {
  features::FeaturePipeline pipeline;   // the attacker's pipeline
  std::shared_ptr<nn::Network> network;
  nn::TrainHistory history;
  double train_accuracy = 0.0;
};

/// Trains a substitute on the ATTACKER'S dataset (same distribution but
/// disjoint from the target's training data) using the TARGET's exact
/// feature pipeline — the paper's first grey-box experiment assumes "the
/// attacker knows the exact 491 features", i.e. the feature definition
/// including the count transformation.
SubstituteResult train_substitute_exact_features(
    const data::CountDataset& attacker_data, const ExperimentConfig& config,
    const features::FeaturePipeline& target_pipeline);

/// Trains a substitute on binary presence features (the reduced-knowledge
/// variant of Fig. 4(c)).
SubstituteResult train_substitute_binary_features(
    const data::CountDataset& attacker_data, const ExperimentConfig& config,
    const data::ApiVocab& vocab);

}  // namespace mev::core
