#include "runtime/circuit_breaker.hpp"

#include "runtime/log_hook.hpp"

namespace mev::runtime {

CircuitBreaker::CircuitBreaker(const CircuitBreakerConfig& config,
                               Clock& clock)
    : config_(config), clock_(&clock) {
  if (config_.failure_threshold == 0) config_.failure_threshold = 1;
  if (config_.half_open_successes == 0) config_.half_open_successes = 1;
}

bool CircuitBreaker::allow() {
  if (state_ == BreakerState::kOpen &&
      clock_->now_ms() - opened_at_ms_ >= config_.open_cooldown_ms) {
    state_ = BreakerState::kHalfOpen;
    half_open_successes_ = 0;
    log(LogLevel::kInfo, "runtime.breaker", "circuit half-open",
        {LogField::u64_value("trips", trips_)});
  }
  return state_ != BreakerState::kOpen;
}

void CircuitBreaker::record_success() {
  switch (state_) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      break;
    case BreakerState::kHalfOpen:
      if (++half_open_successes_ >= config_.half_open_successes) {
        state_ = BreakerState::kClosed;
        consecutive_failures_ = 0;
        log(LogLevel::kInfo, "runtime.breaker", "circuit closed",
            {LogField::u64_value("trips", trips_)});
      }
      break;
    case BreakerState::kOpen:
      break;  // success cannot be observed while open; ignore
  }
}

void CircuitBreaker::record_failure() {
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold) trip();
      break;
    case BreakerState::kHalfOpen:
      trip();  // the trial call failed; back to open
      break;
    case BreakerState::kOpen:
      break;
  }
}

std::uint64_t CircuitBreaker::cooldown_remaining_ms() {
  if (state_ != BreakerState::kOpen) return 0;
  const std::uint64_t elapsed = clock_->now_ms() - opened_at_ms_;
  return elapsed >= config_.open_cooldown_ms
             ? 0
             : config_.open_cooldown_ms - elapsed;
}

void CircuitBreaker::trip() {
  state_ = BreakerState::kOpen;
  opened_at_ms_ = clock_->now_ms();
  consecutive_failures_ = 0;
  ++trips_;
  log(LogLevel::kWarn, "runtime.breaker", "circuit opened",
      {LogField::u64_value("trips", trips_),
       LogField::u64_value("cooldown_ms", config_.open_cooldown_ms)});
}

}  // namespace mev::runtime
