# Empty compiler generated dependencies file for blackbox_framework.
# This may be replaced when dependencies are built.
