#include "core/greybox.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "data/api_vocab.hpp"

namespace mev::core {
namespace {

features::CountTransform fitted_transform() {
  features::CountTransform t;
  math::Matrix counts(2, 4);
  counts(0, 0) = 10;
  counts(0, 1) = 4;
  counts(1, 2) = 2;
  counts(0, 3) = 1;
  t.fit(counts);
  return t;
}

TEST(GreyBox, CountAdditionsFromPerturbation) {
  const auto t = fitted_transform();
  // original counts {2, 0, 0, 0} -> features {0.2, 0, 0, 0}
  math::Matrix orig(1, 4);
  orig(0, 0) = 0.2f;
  math::Matrix adv = orig;
  adv(0, 0) = 0.5f;  // 0.3 * denom(10) = +3 calls
  adv(0, 1) = 0.25f; // 0.25 * denom(4) = +1 call
  const math::Matrix additions =
      additions_from_count_perturbation(t, orig, adv);
  EXPECT_EQ(additions(0, 0), 3.0f);
  EXPECT_EQ(additions(0, 1), 1.0f);
  EXPECT_EQ(additions(0, 2), 0.0f);
}

TEST(GreyBox, AdditionsAreNeverNegative) {
  const auto t = fitted_transform();
  math::Matrix orig(1, 4, 0.5f);
  math::Matrix adv(1, 4, 0.1f);  // decreased features must be ignored
  const math::Matrix additions =
      additions_from_count_perturbation(t, orig, adv);
  for (std::size_t i = 0; i < additions.size(); ++i)
    EXPECT_EQ(additions.data()[i], 0.0f);
}

TEST(GreyBox, TinyPositiveDeltaStillAddsOneCall) {
  const auto t = fitted_transform();
  math::Matrix orig(1, 4);
  math::Matrix adv = orig;
  adv(0, 3) = 0.01f;  // denom 1 -> sub-one-call delta, still one real call
  const math::Matrix additions =
      additions_from_count_perturbation(t, orig, adv);
  EXPECT_EQ(additions(0, 3), 1.0f);
}

TEST(GreyBox, ShapeMismatchThrows) {
  const auto t = fitted_transform();
  EXPECT_THROW(
      additions_from_count_perturbation(t, math::Matrix(1, 4),
                                        math::Matrix(2, 4)),
      std::invalid_argument);
  EXPECT_THROW(additions_from_binary_perturbation(math::Matrix(1, 4),
                                                  math::Matrix(1, 5)),
               std::invalid_argument);
}

TEST(GreyBox, BinaryAdditionsOnlyForNewlyActivated) {
  math::Matrix orig{{0, 1, 0, 1}};
  math::Matrix adv{{0.4f, 1, 0, 1}};  // feature 0 newly raised
  const math::Matrix additions =
      additions_from_binary_perturbation(orig, adv);
  EXPECT_EQ(additions(0, 0), 1.0f);
  EXPECT_EQ(additions(0, 1), 0.0f);
  EXPECT_EQ(additions(0, 3), 0.0f);
}

features::FeaturePipeline target_pipeline(const math::Matrix& counts) {
  auto transform = std::make_unique<features::CountTransform>();
  transform->fit(counts);
  // Use a small custom vocab matching the 4-feature toy data.
  static const data::ApiVocab vocab(
      {"alpha", "bravo", "charlie", "delta"});
  return features::FeaturePipeline(vocab, std::move(transform));
}

TEST(GreyBoxMap, CountMapRoundTripAtZeroPerturbation) {
  math::Matrix counts{{2, 0, 1, 0}, {0, 3, 0, 1}};
  auto pipeline = target_pipeline(counts);
  features::CountTransform attacker;
  attacker.fit(counts);
  const auto map = make_greybox_count_map(attacker, pipeline, counts);

  const math::Matrix craft = map.to_craft_space(math::Matrix(2, 4));
  // No perturbation: deployment reproduces the target features exactly.
  const math::Matrix deployed = map.to_target_space(craft);
  EXPECT_EQ(deployed, pipeline.features_from_counts(counts));
}

TEST(GreyBoxMap, DeployedFeaturesNeverDecrease) {
  math::Matrix counts{{2, 0, 1, 0}};
  auto pipeline = target_pipeline(counts);
  features::CountTransform attacker;
  attacker.fit(counts);
  const auto map = make_greybox_count_map(attacker, pipeline, counts);
  math::Matrix craft = map.to_craft_space(math::Matrix(1, 4));
  math::Matrix adv = craft;
  for (std::size_t j = 0; j < 4; ++j)
    adv(0, j) = std::min(1.0f, adv(0, j) + 0.3f);
  const math::Matrix base = pipeline.features_from_counts(counts);
  const math::Matrix deployed = map.to_target_space(adv);
  for (std::size_t j = 0; j < 4; ++j)
    EXPECT_GE(deployed(0, j), base(0, j) - 1e-6);
}

TEST(GreyBoxMap, BinaryMapActivatesApis) {
  math::Matrix counts{{2, 0, 1, 0}};
  auto pipeline = target_pipeline(counts);
  const auto map = make_greybox_binary_map(pipeline, counts);
  const math::Matrix craft = map.to_craft_space(math::Matrix(1, 4));
  EXPECT_EQ(craft(0, 0), 1.0f);
  EXPECT_EQ(craft(0, 1), 0.0f);

  math::Matrix adv = craft;
  adv(0, 1) = 0.7f;  // activate API 1
  const math::Matrix deployed = map.to_target_space(adv);
  const math::Matrix base = pipeline.features_from_counts(counts);
  EXPECT_GT(deployed(0, 1), base(0, 1));
}

}  // namespace
}  // namespace mev::core
