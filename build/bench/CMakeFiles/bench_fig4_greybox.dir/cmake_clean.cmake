file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_greybox.dir/bench_fig4_greybox.cpp.o"
  "CMakeFiles/bench_fig4_greybox.dir/bench_fig4_greybox.cpp.o.d"
  "bench_fig4_greybox"
  "bench_fig4_greybox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_greybox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
