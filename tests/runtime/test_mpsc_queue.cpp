// MpscQueue edge cases (wraparound, full, empty) plus the concurrency
// contracts the serving shards rely on: multi-producer enqueue, stealing
// consumers, and exactly-once delivery. The concurrent cases are sized to
// run quickly so CI can repeat them under TSan.
#include "runtime/mpsc_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <vector>

namespace mev::runtime {
namespace {

TEST(MpscQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(MpscQueue<int>(64).capacity(), 64u);
  EXPECT_EQ(MpscQueue<int>(65).capacity(), 128u);
}

TEST(MpscQueue, EmptyPopReturnsNullopt) {
  MpscQueue<int> q(4);
  EXPECT_FALSE(q.try_pop().has_value());
  EXPECT_TRUE(q.approx_empty());
  EXPECT_EQ(q.approx_size(), 0u);
}

TEST(MpscQueue, FullPushFailsWithoutConsumingValue) {
  MpscQueue<std::unique_ptr<int>> q(4);
  for (int i = 0; i < 4; ++i)
    EXPECT_TRUE(q.try_push(std::make_unique<int>(i)));
  auto overflow = std::make_unique<int>(99);
  EXPECT_FALSE(q.try_push(std::move(overflow)));
  // A failed push must leave the caller's value intact (it may need to
  // spill to another shard or be rejected with the value attached).
  ASSERT_NE(overflow, nullptr);
  EXPECT_EQ(*overflow, 99);
  EXPECT_EQ(q.approx_size(), 4u);
}

TEST(MpscQueue, FifoOrderSingleThread) {
  MpscQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(int{i}));
  for (int i = 0; i < 8; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpscQueue, WraparoundManyTimesOverSmallRing) {
  // The ring is 4 cells; push/pop 10k items so every cell's sequence
  // number laps the ring thousands of times.
  MpscQueue<std::uint64_t> q(4);
  std::uint64_t next_in = 0, next_out = 0;
  for (int round = 0; round < 2500; ++round) {
    while (q.try_push(std::uint64_t{next_in})) ++next_in;
    EXPECT_EQ(q.approx_size(), q.capacity());  // filled to the brim
    for (auto v = q.try_pop(); v.has_value(); v = q.try_pop())
      EXPECT_EQ(*v, next_out++);
  }
  EXPECT_EQ(next_in, next_out);
  EXPECT_EQ(next_in, 2500u * q.capacity());
}

TEST(MpscQueue, PoppedCellReleasesHeldResources) {
  // try_pop resets the vacated cell, so the ring never keeps the last
  // popped value's resources alive until the cell is overwritten.
  auto probe = std::make_shared<int>(1);
  std::weak_ptr<int> watch = probe;
  MpscQueue<std::shared_ptr<int>> q(4);
  ASSERT_TRUE(q.try_push(std::move(probe)));
  { auto popped = q.try_pop(); ASSERT_TRUE(popped.has_value()); }
  EXPECT_TRUE(watch.expired());
}

TEST(MpscQueue, ConcurrentProducersSingleConsumerExactlyOnce) {
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  MpscQueue<std::uint64_t> q(64);  // small: forces full-queue retries
  std::atomic<bool> done{false};

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p)
    producers.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        std::uint64_t value = p * kPerProducer + i;
        while (!q.try_push(std::move(value))) std::this_thread::yield();
      }
    });

  std::vector<std::uint64_t> received;
  std::thread consumer([&] {
    std::vector<std::uint64_t> last_seen(kProducers, 0);
    for (;;) {
      auto v = q.try_pop();
      if (!v.has_value()) {
        if (done.load(std::memory_order_acquire)) {
          // Producers finished: drain whatever is left, then stop.
          while ((v = q.try_pop()).has_value()) received.push_back(*v);
          return;
        }
        std::this_thread::yield();
        continue;
      }
      // Per-producer FIFO must hold even under contention.
      const std::size_t p = *v / kPerProducer;
      const std::uint64_t seq = *v % kPerProducer;
      EXPECT_GE(seq + 1, last_seen[p]);
      last_seen[p] = seq + 1;
      received.push_back(*v);
    }
  });

  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  ASSERT_EQ(received.size(), kProducers * kPerProducer);
  std::set<std::uint64_t> unique(received.begin(), received.end());
  EXPECT_EQ(unique.size(), received.size());  // exactly once, no dupes
}

TEST(MpscQueue, StealingConsumersEachItemDeliveredOnce) {
  // The work-stealing shape: producers push to one shard while both the
  // owner and a thief pop from it concurrently.
  constexpr std::uint64_t kItems = 20000;
  MpscQueue<std::uint64_t> q(128);
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> popped{0};
  std::vector<std::atomic<std::uint32_t>> seen(kItems);

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      std::uint64_t value = i;
      while (!q.try_push(std::move(value))) std::this_thread::yield();
    }
  });

  auto consume = [&] {
    while (popped.load(std::memory_order_relaxed) < kItems) {
      auto v = q.try_pop();
      if (!v.has_value()) {
        if (done.load(std::memory_order_acquire) &&
            popped.load(std::memory_order_relaxed) >= kItems)
          return;
        std::this_thread::yield();
        continue;
      }
      seen[*v].fetch_add(1, std::memory_order_relaxed);
      popped.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread owner(consume), thief(consume);

  producer.join();
  done.store(true, std::memory_order_release);
  owner.join();
  thief.join();

  EXPECT_EQ(popped.load(), kItems);
  for (std::uint64_t i = 0; i < kItems; ++i)
    EXPECT_EQ(seen[i].load(), 1u) << "item " << i;
}

}  // namespace
}  // namespace mev::runtime
