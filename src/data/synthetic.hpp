// Synthetic API-log generative model — the stand-in for the proprietary
// McAfee Labs corpus (DESIGN.md §2).
//
// Model: each class (clean / malware) has a vector of Poisson base rates
// over the 491 API features. Rates are built deterministically from a seed:
//
//  * "loader" APIs (process startup boilerplate, cf. Table II) have high
//    rates in BOTH classes — they carry no label signal;
//  * malware-signature APIs (process injection, persistence, crypto,
//    networking beacons, keylogging) have elevated malware rates;
//  * benign-signature APIs (GUI, printing, clipboard) have elevated clean
//    rates;
//  * the remaining APIs get small background rates.
//
// Per sample: an activity multiplier (gamma-distributed) scales all rates,
// an OS variant perturbs a subset of rates, and with a small probability
// the sample is drawn from the OPPOSITE class profile ("hard" samples) so
// the learned detector has realistic error rates (paper Table VI,
// No Defense: TPR 0.883 / TNR 0.964) rather than being trivially perfect.
//
// The test split can apply a multiplicative log-normal drift to all rates,
// modelling the paper's VirusTotal test data being "independent of the
// training data".
#pragma once

#include <cstdint>
#include <vector>

#include "data/api_log.hpp"
#include "data/api_vocab.hpp"
#include "data/dataset.hpp"
#include "math/rng.hpp"

namespace mev::data {

struct GenerativeConfig {
  std::uint64_t seed = 2018;  // the corpus vintage, per the paper
  /// Mean number of loader-API calls per sample.
  double loader_rate = 6.0;
  /// Mean rate boost applied to signature APIs of the sample's class.
  double signature_boost = 10.0;
  /// Gamma shape of the per-API boost. Small values (< 1) make the class
  /// evidence heavy-tailed — a few dominant marker APIs — which is what
  /// gives real detectors their adversarial fragility: JSMA needs to flip
  /// only the dominant markers.
  double signature_shape = 0.5;
  /// Probability that an active API is called in a loop, multiplying its
  /// count by up to `burst_max` (gives raw counts the heavy tail real API
  /// logs have).
  double burst_probability = 0.05;
  std::uint32_t burst_max = 40;
  /// Fraction of the clean-signature boost that malware samples also
  /// carry (malware uses GUI/clipboard/etc. too). This controls how close
  /// malware sits to the decision boundary along the add-only attack
  /// direction: higher leakage -> softer boundary -> the paper's gradual
  /// confidence decay under API additions.
  double clean_marker_leakage = 0.50;
  /// Fraction of the malware-signature boost that clean samples carry
  /// (legitimate installers call CreateService, WriteProcessMemory...).
  /// Kept small so the false-positive rate stays realistic.
  double malware_marker_leakage = 0.03;
  /// Background rate for non-signature APIs.
  double background_rate = 0.25;
  /// Fraction of APIs with any background usage at all.
  double background_support = 0.45;
  /// P(sample drawn from the opposite profile) — adds irreducible error on
  /// top of the natural profile overlap.
  double hard_sample_clean = 0.005;   // clean samples that look suspicious
  double hard_sample_malware = 0.020; // malware that looks benign
  /// Std-dev of the log-normal rate drift applied to the test split.
  double test_drift_sigma = 0.30;
  /// Shape of the per-sample activity gamma (mean fixed at 1).
  double activity_shape = 3.0;
  /// Cap on the number of signature APIs per class. A small, shared set of
  /// discriminative markers is what makes independently trained models
  /// agree on their decision boundaries — the precondition for the
  /// transferability the paper measures (§II-B.2). 0 disables the cap.
  std::size_t max_signature_apis = 16;
};

/// Deterministic class-conditional profile over the vocabulary.
struct ClassProfiles {
  std::vector<double> clean_rates;    // vocab-sized Poisson base rates
  std::vector<double> malware_rates;
  std::vector<std::size_t> loader_apis;
  std::vector<std::size_t> malware_signature_apis;
  std::vector<std::size_t> clean_signature_apis;
};

class GenerativeModel {
 public:
  /// Builds profiles over `vocab` from `config.seed`.
  GenerativeModel(const ApiVocab& vocab, GenerativeConfig config);

  const ClassProfiles& profiles() const noexcept { return profiles_; }
  const GenerativeConfig& config() const noexcept { return config_; }
  const ApiVocab& vocab() const noexcept { return *vocab_; }

  /// Raw API-count vector for one sample of the given label.
  /// `drifted` selects the test-split profile.
  std::vector<float> generate_counts(int label, math::Rng& rng,
                                     bool drifted = false) const;

  /// Materializes a full log whose extracted counts equal `counts` exactly
  /// (call order, addresses and thread ids are synthesized).
  ApiLog log_from_counts(const std::vector<float>& counts,
                         const std::string& sample_name, math::Rng& rng) const;

  /// Convenience: generate_counts + log_from_counts.
  ApiLog generate_log(int label, const std::string& sample_name,
                      math::Rng& rng, bool drifted = false) const;

  /// Bulk generation of a labeled dataset (clean rows first).
  CountDataset generate_dataset(std::size_t n_clean, std::size_t n_malware,
                                math::Rng& rng, bool drifted = false) const;

  /// Full Table I-style bundle: train and validation from the in-
  /// distribution profile, test from the drifted profile.
  DatasetBundle generate_bundle(const DatasetSpec& spec, math::Rng& rng) const;

 private:
  const ApiVocab* vocab_;
  GenerativeConfig config_;
  ClassProfiles profiles_;
  std::vector<double> drift_clean_;    // test-split rates
  std::vector<double> drift_malware_;

  std::vector<float> sample_from_rates(const std::vector<double>& rates,
                                       math::Rng& rng) const;
};

}  // namespace mev::data
