file(REMOVE_RECURSE
  "CMakeFiles/mev_attack.dir/attack.cpp.o"
  "CMakeFiles/mev_attack.dir/attack.cpp.o.d"
  "CMakeFiles/mev_attack.dir/fgsm.cpp.o"
  "CMakeFiles/mev_attack.dir/fgsm.cpp.o.d"
  "CMakeFiles/mev_attack.dir/jsma.cpp.o"
  "CMakeFiles/mev_attack.dir/jsma.cpp.o.d"
  "CMakeFiles/mev_attack.dir/random_attack.cpp.o"
  "CMakeFiles/mev_attack.dir/random_attack.cpp.o.d"
  "CMakeFiles/mev_attack.dir/source_attack.cpp.o"
  "CMakeFiles/mev_attack.dir/source_attack.cpp.o.d"
  "CMakeFiles/mev_attack.dir/transfer.cpp.o"
  "CMakeFiles/mev_attack.dir/transfer.cpp.o.d"
  "libmev_attack.a"
  "libmev_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mev_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
