// Descriptive statistics used by the evaluation and reporting code.
#pragma once

#include <span>
#include <vector>

#include "math/matrix.hpp"

namespace mev::math {

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

/// Mean of a sample (0 for empty input).
double mean(std::span<const double> v);
double mean_f(std::span<const float> v);

/// Population variance (0 for inputs with fewer than 1 element).
double variance(std::span<const double> v);

/// Population standard deviation.
double stddev(std::span<const double> v);

/// Full summary in one pass.
Summary summarize(std::span<const double> v);

/// p-th percentile (p in [0,100]) by linear interpolation; sorts a copy.
double percentile(std::span<const double> v, double p);

/// Sample covariance matrix of the rows of X (features are columns),
/// normalized by N (population covariance). Requires X.rows() >= 1.
Matrix covariance_matrix(const Matrix& x);

/// Pearson correlation between two equally-sized samples (0 if degenerate).
double pearson(std::span<const double> a, std::span<const double> b);

}  // namespace mev::math
