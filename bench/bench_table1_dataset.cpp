// Reproduces Table I (the dataset), Table II (log excerpt) and Table III
// (API feature excerpt).
//
//   ./bench_table1_dataset [tiny|fast|full]
#include <iostream>

#include "bench_common.hpp"
#include "data/api_log.hpp"
#include "eval/report.hpp"

using namespace mev;

int main(int argc, char** argv) {
  const auto config = bench::parse_scale(argc, argv);
  const auto& vocab = data::ApiVocab::instance();

  // ---- Table I -----------------------------------------------------------
  const auto spec = config.dataset_spec();
  const auto paper = data::DatasetSpec::paper();
  eval::Table t1("TABLE I: THE DATASET (paper vs this run)");
  t1.header({"Dataset", "paper samples", "this run"});
  t1.row({"Training Set",
          std::to_string(paper.train_total()) + " (" +
              std::to_string(paper.train_clean) + " clean / " +
              std::to_string(paper.train_malware) + " malware)",
          std::to_string(spec.train_total()) + " (" +
              std::to_string(spec.train_clean) + " clean / " +
              std::to_string(spec.train_malware) + " malware)"});
  t1.row({"Validation Set",
          std::to_string(paper.val_total()) + " (" +
              std::to_string(paper.val_clean) + " / " +
              std::to_string(paper.val_malware) + ")",
          std::to_string(spec.val_total()) + " (" +
              std::to_string(spec.val_clean) + " / " +
              std::to_string(spec.val_malware) + ")"});
  t1.row({"Test Set",
          std::to_string(paper.test_total()) + " (" +
              std::to_string(paper.test_clean) + " / " +
              std::to_string(paper.test_malware) + ")",
          std::to_string(spec.test_total()) + " (" +
              std::to_string(spec.test_clean) + " / " +
              std::to_string(spec.test_malware) + ")"});
  std::cout << t1.render() << "\n";

  // Verify the generated bundle matches the spec exactly.
  data::GenerativeModel generator(vocab, data::GenerativeConfig{});
  math::Rng rng(config.seed);
  const auto bundle = generator.generate_bundle(spec, rng);
  std::cout << "generated: train=" << bundle.train.size() << " ("
            << bundle.train.count_label(data::kCleanLabel) << " clean / "
            << bundle.train.count_label(data::kMalwareLabel)
            << " malware), val=" << bundle.validation.size()
            << ", test=" << bundle.test.size() << "\n\n";

  // ---- Table II ----------------------------------------------------------
  std::cout << "TABLE II: EXCERPT OF A LOG FILE (synthetic)\n"
            << "-------------------------------------------\n";
  const data::ApiLog log =
      generator.generate_log(data::kMalwareLabel, "sample_0001.exe", rng);
  const std::size_t shown = std::min<std::size_t>(log.calls.size(), 10);
  for (std::size_t i = 0; i < shown; ++i)
    std::cout << data::format_api_call(log.calls[i]) << "\n";
  std::cout << "... (" << log.calls.size() << " calls total)\n\n";

  // ---- Table III ---------------------------------------------------------
  std::cout << "TABLE III: EXCERPT OF THE API FEATURES (indices 475..484)\n"
            << "----------------------------------------------------------\n";
  for (std::size_t i = 475; i <= 484 && i < vocab.size(); ++i)
    std::cout << i << " " << vocab.name(i) << "\n";
  std::cout << "\nvocabulary size: " << vocab.size()
            << " (paper: 491 API features)\n";

  // The names the paper prints must all be present.
  std::cout << "paper-named APIs present: ";
  bool all = true;
  for (const auto name : data::paper_api_names())
    all = all && vocab.contains(name);
  std::cout << (all ? "yes (all)" : "MISSING SOME") << "\n";
  return all ? 0 : 1;
}
